//! Pluggable trace sinks.
//!
//! The harness driver reports every run event through the [`TraceSink`]
//! trait instead of writing straight into a [`Trace`]. The full recorder
//! ([`Trace`] itself) stays the default and keeps the complete event
//! stream; [`RunCounters`] is the fleet-scale alternative that folds each
//! event into counters, per-routine latencies and a deterministic digest
//! without any per-event allocation — removing trace recording from the
//! hot loop when thousands of homes run in one process.

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

use crate::id::RoutineId;
use crate::routine::Routine;
use crate::time::Timestamp;
use crate::trace::{InflightWriteTracker, OrderItem, Trace, TraceEventKind};
use crate::value::Value;
use crate::DeviceId;

/// Receiver for the events of one simulated run.
///
/// Implementations must be cheap relative to the event rate: the driver
/// calls [`TraceSink::record`] for every dispatch, completion, state
/// change and detection in the run.
pub trait TraceSink {
    /// Registers a submitted routine. Recording sinks clone the
    /// definition; counting sinks only read its shape.
    fn record_submission(&mut self, id: RoutineId, routine: &Routine, at: Timestamp);

    /// Appends one run event.
    fn record(&mut self, at: Timestamp, kind: TraceEventKind);

    /// Marks the boundary between two backend event pops. Only
    /// instrumenting sinks (the intra-home sub-run recorder) segment the
    /// call stream by pop; ordinary sinks ignore it.
    fn pop_boundary(&mut self) {}

    /// Finalizes the sink when the run ends: the engine's witness order,
    /// the devices' actual end states, and the engine's committed view
    /// (for end-state congruence checking).
    fn finish(
        &mut self,
        final_order: Vec<OrderItem>,
        end_states: BTreeMap<DeviceId, Value>,
        committed_states: &BTreeMap<DeviceId, Value>,
    );
}

impl TraceSink for Trace {
    fn record_submission(&mut self, id: RoutineId, routine: &Routine, at: Timestamp) {
        Trace::record_submission(self, id, routine.clone(), at);
    }

    fn record(&mut self, at: Timestamp, kind: TraceEventKind) {
        self.push(at, kind);
    }

    fn finish(
        &mut self,
        final_order: Vec<OrderItem>,
        end_states: BTreeMap<DeviceId, Value>,
        _committed_states: &BTreeMap<DeviceId, Value>,
    ) {
        self.final_order = final_order;
        self.end_states = end_states;
    }
}

/// The digest hasher: deterministic across runs, threads and platforms
/// (unlike `DefaultHasher`, whose keys are unspecified). Integer writes —
/// the only thing the trace vocabulary contains — take a wide
/// multiply-rotate mix (FxHash-style) so digesting stays off the hot
/// loop's profile; the byte path falls back to FNV-1a.
struct DigestHasher(u64);

impl DigestHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    #[inline]
    fn mix(&mut self, v: u64) {
        self.0 = (self.0 ^ v)
            .wrapping_mul(0x2545_F491_4F6C_DD1D)
            .rotate_left(23);
    }
}

impl Hasher for DigestHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.mix(i as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// The initial state of a [`fold_digest`] chain.
pub const DIGEST_SEED: u64 = DigestHasher::OFFSET;

/// Folds one value into a running digest, using the same deterministic
/// hasher as [`RunCounters::digest`]. Aggregators (e.g. the fleet's
/// per-home digest combination) must use this rather than re-implement
/// the mixing, so a digest-scheme change stays in one place.
pub fn fold_digest(acc: u64, value: u64) -> u64 {
    let mut h = DigestHasher(acc);
    h.write_u64(value);
    h.finish()
}

/// How many buffered words trigger a digest mixing pass. Events hash to
/// a handful of words each, so one pass folds roughly a dozen events —
/// amortizing the per-event hasher setup and letting the enum traversal
/// and the serial mix chain run as separate tight loops. Replaying the
/// buffered words through the same chain is bit-for-bit identical to
/// mixing them eagerly, so committed digest baselines are unaffected.
const DIGEST_BATCH: usize = 64;

/// Replays buffered words through the digest chain (see
/// [`DIGEST_BATCH`]); the chain state resumes exactly where the last
/// flush left it, so batching never changes the final digest.
fn flush_words(digest: &mut u64, pending: &mut Vec<u64>) {
    let mut h = DigestHasher(*digest);
    for &w in pending.iter() {
        h.write_u64(w);
    }
    *digest = h.finish();
    pending.clear();
}

/// Hasher that captures the word stream into the batch buffer instead of
/// mixing eagerly. The rarely-taken byte path (no trace vocabulary hits
/// it today) flushes and applies the FNV byte mix directly, preserving
/// the exact chain order of the unbatched digest.
struct BatchHasher<'a> {
    digest: &'a mut u64,
    pending: &'a mut Vec<u64>,
}

impl BatchHasher<'_> {
    #[inline]
    fn push(&mut self, v: u64) {
        self.pending.push(v);
    }
}

impl Hasher for BatchHasher<'_> {
    fn write(&mut self, bytes: &[u8]) {
        flush_words(self.digest, self.pending);
        for &b in bytes {
            *self.digest ^= b as u64;
            *self.digest = self.digest.wrapping_mul(DigestHasher::PRIME);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.push(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.push(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.push(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.push(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.push(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.push(i as u64);
    }

    fn finish(&self) -> u64 {
        unreachable!("BatchHasher only captures; the digest chain finishes at flush")
    }
}

/// Per-routine bookkeeping while a routine is in flight.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SubInfo {
    submitted: Timestamp,
    commands: u32,
    /// The routine's ideal runtime in ms (floored at 1), the normalizer
    /// for normalized latency and stretch.
    ideal_ms: u64,
    started: Option<Timestamp>,
}

/// Counters-only sink: outcomes, latencies, end-state congruence,
/// temporary incongruence, parallelism and a deterministic event digest —
/// no per-event `Vec` pushes, memory bounded by the home (routines ×
/// devices), never by the event count.
///
/// Temporary incongruence and parallelism come from in-flight write
/// tracking: the sink keeps, per started-but-unfinished routine, the set
/// of devices it has modified, and folds every `StateChanged` against
/// those sets — the same §7.1 definitions as the full-trace metrics pass
/// (asserted equal in the harness and bench tests), which used to force
/// the Fig. 1/16/17 experiments onto the allocating `Trace` path.
///
/// Two runs with identical event streams, witness orders and end states
/// produce byte-identical `RunCounters` (the fleet determinism check
/// compares them across worker-thread counts).
///
/// Per-routine distribution metrics (normalized latency, waits, stretch
/// — the quantities that used to force experiments onto the trace path)
/// are kept as pooled vectors, bounded by the routine count; experiments
/// recycle one sink across trials via [`RunCounters::reset`], so the
/// steady state allocates nothing per trial either.
#[derive(Debug, Clone, PartialEq)]
pub struct RunCounters {
    /// Routines submitted.
    pub submitted: u64,
    /// Routines committed.
    pub committed: u64,
    /// Routines aborted.
    pub aborted: u64,
    /// Best-effort commands skipped.
    pub best_effort_skipped: u64,
    /// Commands dispatched (excluding rollback writes).
    pub dispatches: u64,
    /// Commands that completed successfully.
    pub command_successes: u64,
    /// Commands that failed at the device.
    pub command_failures: u64,
    /// Device state changes (including rollback writes).
    pub state_changes: u64,
    /// State changes attributed to rollback writes.
    pub rollback_writes: u64,
    /// Detector down transitions.
    pub down_detections: u64,
    /// Detector up transitions.
    pub up_detections: u64,
    /// Submit-to-finish latency of every finished routine, in
    /// milliseconds, in finish order.
    pub latencies_ms: Vec<u64>,
    /// Latency normalized by the routine's own ideal runtime, committed
    /// routines only (the paper's Fig. 14a metric; same definition as
    /// the trace pass).
    pub normalized_latencies: Vec<f64>,
    /// Wait time (submission → actual start) per started routine, ms.
    pub waits_ms: Vec<f64>,
    /// Stretch factor per committed routine: (finish − start) / ideal.
    pub stretch: Vec<f64>,
    /// Time of the last recorded event.
    pub end_time: Timestamp,
    /// `true` when the devices' end states match the engine's committed
    /// view on every device not believed down at the end of the run.
    pub congruent: bool,
    /// Normalized swap distance between the witness serialization order
    /// (routines only) and submission order, in `[0, 1]`. Set at finish;
    /// same definition as the full-trace metrics pass (§7.1 "order
    /// mismatch").
    pub order_mismatch: f64,
    /// Fraction of routines that suffered ≥ 1 temporary-incongruence
    /// event — another routine changed a device they had modified,
    /// before they finished (§7.1, Figs. 1/16/17). Set at finish;
    /// computed from the in-flight write tracking below with the same
    /// definition as the full-trace metrics pass.
    pub temporary_incongruence: f64,
    /// Average number of concurrently executing routines, sampled at
    /// routine start/end points. Set at finish; same definition as the
    /// full-trace metrics pass.
    pub parallelism: f64,
    /// The devices' actual states when the run ended (captured at
    /// finish). Lets trace-free experiments run end-state incongruence
    /// checks (Fig. 1) without recording an event stream; size is bound
    /// by the home, not the run.
    pub end_states: BTreeMap<DeviceId, Value>,
    /// Deterministic digest over the full event stream, the witness
    /// order and the end states. Mixed in batches (`DIGEST_BATCH` words):
    /// final (and comparable) once [`TraceSink::finish`] ran; mid-run it
    /// trails the event stream by up to one unflushed batch.
    pub digest: u64,
    /// Words captured since the last digest mixing pass.
    pending: Vec<u64>,
    /// Submission-time bookkeeping of in-flight routines (drained at
    /// finish).
    submitted_at: BTreeMap<RoutineId, SubInfo>,
    /// In-flight write tracking — the §7.1 temporary-incongruence /
    /// parallelism definition shared with the full-trace metrics pass
    /// (see [`InflightWriteTracker`]). Bounded by the home's
    /// concurrency, not by the event count; drained at finish.
    tracker: InflightWriteTracker,
    /// Sum over aborted routines of (rolled-back dispatches / routine
    /// commands); see [`RunCounters::rollback_overhead`].
    rollback_sum: f64,
    /// Devices currently believed down (to exclude from congruence).
    down: Vec<DeviceId>,
}

impl Default for RunCounters {
    fn default() -> Self {
        RunCounters {
            submitted: 0,
            committed: 0,
            aborted: 0,
            best_effort_skipped: 0,
            dispatches: 0,
            command_successes: 0,
            command_failures: 0,
            state_changes: 0,
            rollback_writes: 0,
            down_detections: 0,
            up_detections: 0,
            latencies_ms: Vec::new(),
            normalized_latencies: Vec::new(),
            waits_ms: Vec::new(),
            stretch: Vec::new(),
            end_time: Timestamp::ZERO,
            congruent: false,
            order_mismatch: 0.0,
            temporary_incongruence: 0.0,
            parallelism: 0.0,
            end_states: BTreeMap::new(),
            digest: DigestHasher::OFFSET,
            pending: Vec::new(),
            submitted_at: BTreeMap::new(),
            tracker: InflightWriteTracker::new(),
            rollback_sum: 0.0,
            down: Vec::new(),
        }
    }
}

impl RunCounters {
    /// A fresh counter sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mean over aborted routines of (rollback dispatches / routine
    /// commands) — the §7.4 "intrusion on the user". 0 when nothing
    /// aborted. Matches the full-trace metrics definition.
    pub fn rollback_overhead(&self) -> f64 {
        if self.aborted == 0 {
            0.0
        } else {
            self.rollback_sum / self.aborted as f64
        }
    }

    /// Clears the sink back to its freshly-constructed state while
    /// keeping every allocation (latency/wait/stretch vectors, digest
    /// batch buffer) — so one sink can be recycled across the trials of
    /// an experiment the way the harness pools per-home state.
    pub fn reset(&mut self) {
        self.submitted = 0;
        self.committed = 0;
        self.aborted = 0;
        self.best_effort_skipped = 0;
        self.dispatches = 0;
        self.command_successes = 0;
        self.command_failures = 0;
        self.state_changes = 0;
        self.rollback_writes = 0;
        self.down_detections = 0;
        self.up_detections = 0;
        self.latencies_ms.clear();
        self.normalized_latencies.clear();
        self.waits_ms.clear();
        self.stretch.clear();
        self.end_time = Timestamp::ZERO;
        self.congruent = false;
        self.order_mismatch = 0.0;
        self.temporary_incongruence = 0.0;
        self.parallelism = 0.0;
        self.end_states = BTreeMap::new();
        self.digest = DigestHasher::OFFSET;
        self.pending.clear();
        self.submitted_at.clear();
        self.tracker = InflightWriteTracker::new();
        self.rollback_sum = 0.0;
        self.down.clear();
    }

    fn fold<T: Hash>(&mut self, value: &T) {
        let mut h = BatchHasher {
            digest: &mut self.digest,
            pending: &mut self.pending,
        };
        value.hash(&mut h);
        if self.pending.len() >= DIGEST_BATCH {
            self.flush_digest();
        }
    }

    /// Mixes any buffered words into `digest` (see [`DIGEST_BATCH`]).
    fn flush_digest(&mut self) {
        flush_words(&mut self.digest, &mut self.pending);
    }

    /// Registers a submission from its shape alone — command count and
    /// ideal runtime are everything [`TraceSink::record_submission`]
    /// reads off the routine definition. Replaying a recorded call
    /// stream (the intra-home merge) uses this to reproduce the exact
    /// same counter and digest updates without the `Routine` in hand.
    pub fn record_submission_shape(
        &mut self,
        id: RoutineId,
        commands: u32,
        ideal_ms: u64,
        at: Timestamp,
    ) {
        self.submitted += 1;
        self.submitted_at.insert(
            id,
            SubInfo {
                submitted: at,
                commands,
                ideal_ms,
                started: None,
            },
        );
        self.end_time = at;
        self.fold(&(at, TraceEventKind::Submitted { routine: id }));
    }

    fn finish_routine(&mut self, routine: RoutineId, at: Timestamp, committed: bool) {
        if let Some(info) = self.submitted_at.remove(&routine) {
            let latency = at.since(info.submitted).as_millis();
            self.latencies_ms.push(latency);
            if committed {
                let ideal = info.ideal_ms as f64;
                self.normalized_latencies.push(latency as f64 / ideal);
                if let Some(started) = info.started {
                    self.stretch
                        .push(at.since(started).as_millis() as f64 / ideal);
                }
            }
        }
    }
}

impl TraceSink for RunCounters {
    fn record_submission(&mut self, id: RoutineId, routine: &Routine, at: Timestamp) {
        self.record_submission_shape(
            id,
            routine.commands.len() as u32,
            routine.ideal_runtime().as_millis().max(1),
            at,
        );
    }

    fn record(&mut self, at: Timestamp, kind: TraceEventKind) {
        self.end_time = at;
        self.fold(&(at, &kind));
        self.tracker.observe(&kind);
        match kind {
            TraceEventKind::Submitted { .. } => {}
            TraceEventKind::Started { routine } => {
                if let Some(info) = self.submitted_at.get_mut(&routine) {
                    info.started = Some(at);
                    self.waits_ms
                        .push(at.since(info.submitted).as_millis() as f64);
                }
            }
            TraceEventKind::Committed { routine } => {
                self.committed += 1;
                self.finish_routine(routine, at, true);
            }
            TraceEventKind::Aborted {
                routine,
                rolled_back,
                ..
            } => {
                self.aborted += 1;
                if let Some(info) = self.submitted_at.get(&routine) {
                    self.rollback_sum += rolled_back as f64 / info.commands.max(1) as f64;
                }
                self.finish_routine(routine, at, false);
            }
            TraceEventKind::CommandDispatched { .. } => self.dispatches += 1,
            TraceEventKind::CommandCompleted { outcome, .. } => match outcome {
                crate::trace::CmdOutcome::Success { .. } => self.command_successes += 1,
                crate::trace::CmdOutcome::Failed => self.command_failures += 1,
            },
            TraceEventKind::BestEffortSkipped { .. } => self.best_effort_skipped += 1,
            TraceEventKind::StateChanged { rollback, .. } => {
                self.state_changes += 1;
                if rollback {
                    self.rollback_writes += 1;
                }
            }
            TraceEventKind::DeviceDownDetected { device } => {
                self.down_detections += 1;
                if !self.down.contains(&device) {
                    self.down.push(device);
                }
            }
            TraceEventKind::DeviceUpDetected { device } => {
                self.up_detections += 1;
                self.down.retain(|&d| d != device);
            }
        }
    }

    fn finish(
        &mut self,
        final_order: Vec<OrderItem>,
        end_states: BTreeMap<DeviceId, Value>,
        committed_states: &BTreeMap<DeviceId, Value>,
    ) {
        self.fold(&final_order);
        self.fold(&end_states);
        self.flush_digest();
        let witness: Vec<RoutineId> = final_order
            .iter()
            .filter_map(|o| match o {
                OrderItem::Routine(r) => Some(*r),
                _ => None,
            })
            .collect();
        self.order_mismatch = crate::trace::normalized_swap_distance(&witness);
        let (temporary_incongruence, parallelism) = self.tracker.finish(self.submitted as usize);
        self.temporary_incongruence = temporary_incongruence;
        self.parallelism = parallelism;
        self.congruent = committed_states
            .iter()
            .filter(|(d, _)| !self.down.contains(d))
            .all(|(d, v)| end_states.get(d) == Some(v));
        self.end_states = end_states;
        self.submitted_at.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::TimeDelta;
    use crate::trace::CmdOutcome;
    use crate::CmdIdx;

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn routine() -> Routine {
        Routine::builder("r")
            .set(DeviceId(0), Value::ON, TimeDelta::from_millis(100))
            .build()
    }

    fn feed(sink: &mut dyn TraceSink) {
        let id = RoutineId(1);
        sink.record_submission(id, &routine(), t(0));
        sink.record(t(5), TraceEventKind::Started { routine: id });
        sink.record(
            t(5),
            TraceEventKind::CommandDispatched {
                routine: id,
                idx: CmdIdx(0),
                device: DeviceId(0),
            },
        );
        sink.record(
            t(40),
            TraceEventKind::StateChanged {
                device: DeviceId(0),
                value: Value::ON,
                by: Some(id),
                rollback: false,
            },
        );
        sink.record(
            t(40),
            TraceEventKind::CommandCompleted {
                routine: id,
                idx: CmdIdx(0),
                device: DeviceId(0),
                outcome: CmdOutcome::Success { observed: None },
            },
        );
        sink.record(t(40), TraceEventKind::Committed { routine: id });
    }

    fn end() -> BTreeMap<DeviceId, Value> {
        [(DeviceId(0), Value::ON)].into()
    }

    #[test]
    fn counters_match_full_trace() {
        let mut counters = RunCounters::new();
        let mut trace = Trace::new([(DeviceId(0), Value::OFF)].into());
        feed(&mut counters);
        feed(&mut trace);
        counters.finish(vec![OrderItem::Routine(RoutineId(1))], end(), &end());
        TraceSink::finish(
            &mut trace,
            vec![OrderItem::Routine(RoutineId(1))],
            end(),
            &end(),
        );
        assert_eq!(counters.submitted as usize, trace.records.len());
        assert_eq!(counters.committed as usize, trace.committed().len());
        assert_eq!(counters.aborted, 0);
        assert_eq!(counters.dispatches, 1);
        assert_eq!(counters.command_successes, 1);
        assert_eq!(counters.state_changes, 1);
        assert_eq!(counters.latencies_ms, vec![40]);
        assert_eq!(counters.end_time, trace.end_time());
        assert!(counters.congruent);
        assert_eq!(trace.final_order, vec![OrderItem::Routine(RoutineId(1))]);
        assert_eq!(trace.end_states, end());
    }

    #[test]
    fn digest_is_deterministic_and_order_sensitive() {
        let mut a = RunCounters::new();
        let mut b = RunCounters::new();
        feed(&mut a);
        feed(&mut b);
        assert_eq!(a, b);
        // Mid-run digests compare only after a mixing pass (batching
        // defers up to DIGEST_BATCH words).
        a.flush_digest();
        b.flush_digest();
        assert_eq!(a.digest, b.digest);
        // A different event stream gives a different digest.
        let mut c = RunCounters::new();
        c.record_submission(RoutineId(1), &routine(), t(1));
        c.flush_digest();
        assert_ne!(a.digest, c.digest);
    }

    #[test]
    fn digest_batching_never_changes_the_value() {
        // Flushing after every record is the eager (pre-batching) digest;
        // the batched chain must land on the same value no matter where
        // the batch boundaries fall. Feed enough events to cross several
        // DIGEST_BATCH boundaries.
        let mut batched = RunCounters::new();
        let mut eager = RunCounters::new();
        for i in 0..200u64 {
            let id = RoutineId(i + 1);
            batched.record_submission(id, &routine(), t(i));
            eager.record_submission(id, &routine(), t(i));
            eager.flush_digest();
            let ev = TraceEventKind::StateChanged {
                device: DeviceId((i % 3) as u32),
                value: Value::ON,
                by: Some(id),
                rollback: false,
            };
            batched.record(t(i + 1), ev.clone());
            eager.record(t(i + 1), ev);
            eager.flush_digest();
        }
        batched.finish(Vec::new(), end(), &end());
        eager.finish(Vec::new(), end(), &end());
        assert_eq!(batched.digest, eager.digest);
    }

    #[test]
    fn reset_recycles_the_sink_without_leaking_state() {
        let mut reused = RunCounters::new();
        feed(&mut reused);
        reused.finish(vec![OrderItem::Routine(RoutineId(1))], end(), &end());
        let first = reused.clone();
        reused.reset();
        assert_eq!(reused, RunCounters::new(), "reset is a full reinit");
        feed(&mut reused);
        reused.finish(vec![OrderItem::Routine(RoutineId(1))], end(), &end());
        assert_eq!(reused, first, "a recycled sink reproduces a fresh one");
    }

    #[test]
    fn normalized_latency_wait_and_stretch_match_trace_definitions() {
        // Routine ideal = 100ms; submitted at 0, started at 40, committed
        // at 240 → latency 240, wait 40, normalized 2.4, stretch 2.0 —
        // the same numbers RunMetrics derives from a trace.
        let mut s = RunCounters::new();
        let id = RoutineId(1);
        s.record_submission(id, &routine(), t(0));
        s.record(t(40), TraceEventKind::Started { routine: id });
        s.record(t(240), TraceEventKind::Committed { routine: id });
        s.finish(Vec::new(), end(), &end());
        assert_eq!(s.latencies_ms, vec![240]);
        assert_eq!(s.waits_ms, vec![40.0]);
        assert_eq!(s.normalized_latencies, vec![2.4]);
        assert_eq!(s.stretch, vec![2.0]);
        // Aborted routines contribute wait but no normalized/stretch.
        let mut a = RunCounters::new();
        a.record_submission(id, &routine(), t(0));
        a.record(t(10), TraceEventKind::Started { routine: id });
        a.record(
            t(100),
            TraceEventKind::Aborted {
                routine: id,
                reason: crate::trace::AbortReason::MustCommandFailed {
                    device: DeviceId(0),
                },
                executed: 0,
                rolled_back: 0,
            },
        );
        a.finish(Vec::new(), end(), &end());
        assert_eq!(a.waits_ms, vec![10.0]);
        assert!(a.normalized_latencies.is_empty());
        assert!(a.stretch.is_empty());
    }

    #[test]
    fn incongruent_end_state_is_detected() {
        let mut s = RunCounters::new();
        feed(&mut s);
        s.finish(
            Vec::new(),
            [(DeviceId(0), Value::OFF)].into(),
            &[(DeviceId(0), Value::ON)].into(),
        );
        assert!(!s.congruent);
    }

    #[test]
    fn order_mismatch_and_rollback_overhead_match_trace_definitions() {
        let two_cmds = Routine::builder("r2")
            .set(DeviceId(0), Value::ON, TimeDelta::from_millis(100))
            .set(DeviceId(1), Value::ON, TimeDelta::from_millis(100))
            .build();
        let mut s = RunCounters::new();
        s.record_submission(RoutineId(1), &two_cmds, t(0));
        s.record_submission(RoutineId(2), &routine(), t(1));
        s.record(
            t(10),
            TraceEventKind::Aborted {
                routine: RoutineId(1),
                reason: crate::trace::AbortReason::MustCommandFailed {
                    device: DeviceId(1),
                },
                executed: 1,
                rolled_back: 1,
            },
        );
        s.record(
            t(20),
            TraceEventKind::Committed {
                routine: RoutineId(2),
            },
        );
        s.finish(
            vec![
                OrderItem::Routine(RoutineId(2)),
                OrderItem::Failure(DeviceId(1)),
                OrderItem::Routine(RoutineId(1)),
            ],
            end(),
            &end(),
        );
        assert_eq!(s.order_mismatch, 1.0, "two routines fully swapped");
        assert_eq!(s.rollback_overhead(), 0.5, "1 of 2 commands rolled back");
        assert_eq!(s.latencies_ms, vec![10, 19]);
    }

    #[test]
    fn temporary_incongruence_detects_cross_writes() {
        // Mirror of the trace pass's definition test: R1 modifies device
        // 0, R2 changes it while R1 is still in flight → R1 of 2 suffered.
        let two_dev = Routine::builder("r1")
            .set(DeviceId(0), Value::ON, TimeDelta::from_millis(100))
            .set(DeviceId(1), Value::ON, TimeDelta::from_millis(100))
            .build();
        let mut s = RunCounters::new();
        s.record_submission(RoutineId(1), &two_dev, t(0));
        s.record_submission(RoutineId(2), &routine(), t(1));
        s.record(
            t(10),
            TraceEventKind::Started {
                routine: RoutineId(1),
            },
        );
        s.record(
            t(11),
            TraceEventKind::Started {
                routine: RoutineId(2),
            },
        );
        s.record(
            t(20),
            TraceEventKind::StateChanged {
                device: DeviceId(0),
                value: Value::ON,
                by: Some(RoutineId(1)),
                rollback: false,
            },
        );
        s.record(
            t(30),
            TraceEventKind::StateChanged {
                device: DeviceId(0),
                value: Value::OFF,
                by: Some(RoutineId(2)),
                rollback: false,
            },
        );
        s.record(
            t(40),
            TraceEventKind::Committed {
                routine: RoutineId(2),
            },
        );
        s.record(
            t(50),
            TraceEventKind::Committed {
                routine: RoutineId(1),
            },
        );
        s.finish(Vec::new(), end(), &end());
        assert!(
            (s.temporary_incongruence - 0.5).abs() < 1e-12,
            "R1 of 2 suffered: {}",
            s.temporary_incongruence
        );
        // Parallelism samples at the four start/end events: 1, 2, 1, 0.
        assert!((s.parallelism - 1.0).abs() < 1e-12);
    }

    #[test]
    fn writes_after_completion_are_not_incongruence() {
        let mut s = RunCounters::new();
        s.record_submission(RoutineId(1), &routine(), t(0));
        s.record_submission(RoutineId(2), &routine(), t(1));
        s.record(
            t(10),
            TraceEventKind::Started {
                routine: RoutineId(1),
            },
        );
        s.record(
            t(20),
            TraceEventKind::StateChanged {
                device: DeviceId(0),
                value: Value::ON,
                by: Some(RoutineId(1)),
                rollback: false,
            },
        );
        s.record(
            t(30),
            TraceEventKind::Committed {
                routine: RoutineId(1),
            },
        );
        s.record(
            t(31),
            TraceEventKind::Started {
                routine: RoutineId(2),
            },
        );
        s.record(
            t(40),
            TraceEventKind::StateChanged {
                device: DeviceId(0),
                value: Value::OFF,
                by: Some(RoutineId(2)),
                rollback: false,
            },
        );
        s.record(
            t(50),
            TraceEventKind::Committed {
                routine: RoutineId(2),
            },
        );
        s.finish(Vec::new(), end(), &end());
        assert_eq!(s.temporary_incongruence, 0.0);
    }

    #[test]
    fn end_states_are_captured_at_finish() {
        let mut s = RunCounters::new();
        feed(&mut s);
        s.finish(Vec::new(), end(), &end());
        assert_eq!(s.end_states, end());
    }

    #[test]
    fn devices_down_at_end_are_excluded_from_congruence() {
        let mut s = RunCounters::new();
        s.record(
            t(10),
            TraceEventKind::DeviceDownDetected {
                device: DeviceId(0),
            },
        );
        s.finish(
            Vec::new(),
            [(DeviceId(0), Value::OFF)].into(),
            &[(DeviceId(0), Value::ON)].into(),
        );
        assert!(s.congruent, "dead device cannot be rolled forward");
        assert_eq!(s.down_detections, 1);
    }
}
