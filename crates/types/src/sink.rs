//! Pluggable trace sinks.
//!
//! The harness driver reports every run event through the [`TraceSink`]
//! trait instead of writing straight into a [`Trace`]. The full recorder
//! ([`Trace`] itself) stays the default and keeps the complete event
//! stream; [`RunCounters`] is the fleet-scale alternative that folds each
//! event into counters, per-routine latencies and a deterministic digest
//! without any per-event allocation — removing trace recording from the
//! hot loop when thousands of homes run in one process.

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

use crate::id::RoutineId;
use crate::routine::Routine;
use crate::time::Timestamp;
use crate::trace::{InflightWriteTracker, OrderItem, Trace, TraceEventKind};
use crate::value::Value;
use crate::DeviceId;

/// Receiver for the events of one simulated run.
///
/// Implementations must be cheap relative to the event rate: the driver
/// calls [`TraceSink::record`] for every dispatch, completion, state
/// change and detection in the run.
pub trait TraceSink {
    /// Registers a submitted routine. Recording sinks clone the
    /// definition; counting sinks only read its shape.
    fn record_submission(&mut self, id: RoutineId, routine: &Routine, at: Timestamp);

    /// Appends one run event.
    fn record(&mut self, at: Timestamp, kind: TraceEventKind);

    /// Finalizes the sink when the run ends: the engine's witness order,
    /// the devices' actual end states, and the engine's committed view
    /// (for end-state congruence checking).
    fn finish(
        &mut self,
        final_order: Vec<OrderItem>,
        end_states: BTreeMap<DeviceId, Value>,
        committed_states: &BTreeMap<DeviceId, Value>,
    );
}

impl TraceSink for Trace {
    fn record_submission(&mut self, id: RoutineId, routine: &Routine, at: Timestamp) {
        Trace::record_submission(self, id, routine.clone(), at);
    }

    fn record(&mut self, at: Timestamp, kind: TraceEventKind) {
        self.push(at, kind);
    }

    fn finish(
        &mut self,
        final_order: Vec<OrderItem>,
        end_states: BTreeMap<DeviceId, Value>,
        _committed_states: &BTreeMap<DeviceId, Value>,
    ) {
        self.final_order = final_order;
        self.end_states = end_states;
    }
}

/// The digest hasher: deterministic across runs, threads and platforms
/// (unlike `DefaultHasher`, whose keys are unspecified). Integer writes —
/// the only thing the trace vocabulary contains — take a wide
/// multiply-rotate mix (FxHash-style) so digesting stays off the hot
/// loop's profile; the byte path falls back to FNV-1a.
struct DigestHasher(u64);

impl DigestHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    #[inline]
    fn mix(&mut self, v: u64) {
        self.0 = (self.0 ^ v)
            .wrapping_mul(0x2545_F491_4F6C_DD1D)
            .rotate_left(23);
    }
}

impl Hasher for DigestHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.mix(i as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// The initial state of a [`fold_digest`] chain.
pub const DIGEST_SEED: u64 = DigestHasher::OFFSET;

/// Folds one value into a running digest, using the same deterministic
/// hasher as [`RunCounters::digest`]. Aggregators (e.g. the fleet's
/// per-home digest combination) must use this rather than re-implement
/// the mixing, so a digest-scheme change stays in one place.
pub fn fold_digest(acc: u64, value: u64) -> u64 {
    let mut h = DigestHasher(acc);
    h.write_u64(value);
    h.finish()
}

/// Counters-only sink: outcomes, latencies, end-state congruence,
/// temporary incongruence, parallelism and a deterministic event digest —
/// no per-event `Vec` pushes, memory bounded by the home (routines ×
/// devices), never by the event count.
///
/// Temporary incongruence and parallelism come from in-flight write
/// tracking: the sink keeps, per started-but-unfinished routine, the set
/// of devices it has modified, and folds every `StateChanged` against
/// those sets — the same §7.1 definitions as the full-trace metrics pass
/// (asserted equal in the harness and bench tests), which used to force
/// the Fig. 1/16/17 experiments onto the allocating `Trace` path.
///
/// Two runs with identical event streams, witness orders and end states
/// produce byte-identical `RunCounters` (the fleet determinism check
/// compares them across worker-thread counts).
#[derive(Debug, Clone, PartialEq)]
pub struct RunCounters {
    /// Routines submitted.
    pub submitted: u64,
    /// Routines committed.
    pub committed: u64,
    /// Routines aborted.
    pub aborted: u64,
    /// Best-effort commands skipped.
    pub best_effort_skipped: u64,
    /// Commands dispatched (excluding rollback writes).
    pub dispatches: u64,
    /// Commands that completed successfully.
    pub command_successes: u64,
    /// Commands that failed at the device.
    pub command_failures: u64,
    /// Device state changes (including rollback writes).
    pub state_changes: u64,
    /// State changes attributed to rollback writes.
    pub rollback_writes: u64,
    /// Detector down transitions.
    pub down_detections: u64,
    /// Detector up transitions.
    pub up_detections: u64,
    /// Submit-to-finish latency of every finished routine, in
    /// milliseconds, in finish order.
    pub latencies_ms: Vec<u64>,
    /// Time of the last recorded event.
    pub end_time: Timestamp,
    /// `true` when the devices' end states match the engine's committed
    /// view on every device not believed down at the end of the run.
    pub congruent: bool,
    /// Normalized swap distance between the witness serialization order
    /// (routines only) and submission order, in `[0, 1]`. Set at finish;
    /// same definition as the full-trace metrics pass (§7.1 "order
    /// mismatch").
    pub order_mismatch: f64,
    /// Fraction of routines that suffered ≥ 1 temporary-incongruence
    /// event — another routine changed a device they had modified,
    /// before they finished (§7.1, Figs. 1/16/17). Set at finish;
    /// computed from the in-flight write tracking below with the same
    /// definition as the full-trace metrics pass.
    pub temporary_incongruence: f64,
    /// Average number of concurrently executing routines, sampled at
    /// routine start/end points. Set at finish; same definition as the
    /// full-trace metrics pass.
    pub parallelism: f64,
    /// The devices' actual states when the run ended (captured at
    /// finish). Lets trace-free experiments run end-state incongruence
    /// checks (Fig. 1) without recording an event stream; size is bound
    /// by the home, not the run.
    pub end_states: BTreeMap<DeviceId, Value>,
    /// Running deterministic digest over the full event stream, the
    /// witness order and the end states.
    pub digest: u64,
    /// Submission time and command count of in-flight routines (drained
    /// at finish).
    submitted_at: BTreeMap<RoutineId, (Timestamp, u32)>,
    /// In-flight write tracking — the §7.1 temporary-incongruence /
    /// parallelism definition shared with the full-trace metrics pass
    /// (see [`InflightWriteTracker`]). Bounded by the home's
    /// concurrency, not by the event count; drained at finish.
    tracker: InflightWriteTracker,
    /// Sum over aborted routines of (rolled-back dispatches / routine
    /// commands); see [`RunCounters::rollback_overhead`].
    rollback_sum: f64,
    /// Devices currently believed down (to exclude from congruence).
    down: Vec<DeviceId>,
}

impl Default for RunCounters {
    fn default() -> Self {
        RunCounters {
            submitted: 0,
            committed: 0,
            aborted: 0,
            best_effort_skipped: 0,
            dispatches: 0,
            command_successes: 0,
            command_failures: 0,
            state_changes: 0,
            rollback_writes: 0,
            down_detections: 0,
            up_detections: 0,
            latencies_ms: Vec::new(),
            end_time: Timestamp::ZERO,
            congruent: false,
            order_mismatch: 0.0,
            temporary_incongruence: 0.0,
            parallelism: 0.0,
            end_states: BTreeMap::new(),
            digest: DigestHasher::OFFSET,
            submitted_at: BTreeMap::new(),
            tracker: InflightWriteTracker::new(),
            rollback_sum: 0.0,
            down: Vec::new(),
        }
    }
}

impl RunCounters {
    /// A fresh counter sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mean over aborted routines of (rollback dispatches / routine
    /// commands) — the §7.4 "intrusion on the user". 0 when nothing
    /// aborted. Matches the full-trace metrics definition.
    pub fn rollback_overhead(&self) -> f64 {
        if self.aborted == 0 {
            0.0
        } else {
            self.rollback_sum / self.aborted as f64
        }
    }

    fn fold<T: Hash>(&mut self, value: &T) {
        let mut h = DigestHasher(self.digest);
        value.hash(&mut h);
        self.digest = h.finish();
    }

    fn finish_routine(&mut self, routine: RoutineId, at: Timestamp) {
        if let Some((submitted, _)) = self.submitted_at.remove(&routine) {
            self.latencies_ms.push(at.since(submitted).as_millis());
        }
    }
}

impl TraceSink for RunCounters {
    fn record_submission(&mut self, id: RoutineId, routine: &Routine, at: Timestamp) {
        self.submitted += 1;
        self.submitted_at
            .insert(id, (at, routine.commands.len() as u32));
        self.end_time = at;
        self.fold(&(at, TraceEventKind::Submitted { routine: id }));
    }

    fn record(&mut self, at: Timestamp, kind: TraceEventKind) {
        self.end_time = at;
        self.fold(&(at, &kind));
        self.tracker.observe(&kind);
        match kind {
            TraceEventKind::Submitted { .. } | TraceEventKind::Started { .. } => {}
            TraceEventKind::Committed { routine } => {
                self.committed += 1;
                self.finish_routine(routine, at);
            }
            TraceEventKind::Aborted {
                routine,
                rolled_back,
                ..
            } => {
                self.aborted += 1;
                if let Some(&(_, cmds)) = self.submitted_at.get(&routine) {
                    self.rollback_sum += rolled_back as f64 / cmds.max(1) as f64;
                }
                self.finish_routine(routine, at);
            }
            TraceEventKind::CommandDispatched { .. } => self.dispatches += 1,
            TraceEventKind::CommandCompleted { outcome, .. } => match outcome {
                crate::trace::CmdOutcome::Success { .. } => self.command_successes += 1,
                crate::trace::CmdOutcome::Failed => self.command_failures += 1,
            },
            TraceEventKind::BestEffortSkipped { .. } => self.best_effort_skipped += 1,
            TraceEventKind::StateChanged { rollback, .. } => {
                self.state_changes += 1;
                if rollback {
                    self.rollback_writes += 1;
                }
            }
            TraceEventKind::DeviceDownDetected { device } => {
                self.down_detections += 1;
                if !self.down.contains(&device) {
                    self.down.push(device);
                }
            }
            TraceEventKind::DeviceUpDetected { device } => {
                self.up_detections += 1;
                self.down.retain(|&d| d != device);
            }
        }
    }

    fn finish(
        &mut self,
        final_order: Vec<OrderItem>,
        end_states: BTreeMap<DeviceId, Value>,
        committed_states: &BTreeMap<DeviceId, Value>,
    ) {
        self.fold(&final_order);
        self.fold(&end_states);
        let witness: Vec<RoutineId> = final_order
            .iter()
            .filter_map(|o| match o {
                OrderItem::Routine(r) => Some(*r),
                _ => None,
            })
            .collect();
        self.order_mismatch = crate::trace::normalized_swap_distance(&witness);
        let (temporary_incongruence, parallelism) = self.tracker.finish(self.submitted as usize);
        self.temporary_incongruence = temporary_incongruence;
        self.parallelism = parallelism;
        self.congruent = committed_states
            .iter()
            .filter(|(d, _)| !self.down.contains(d))
            .all(|(d, v)| end_states.get(d) == Some(v));
        self.end_states = end_states;
        self.submitted_at.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::TimeDelta;
    use crate::trace::CmdOutcome;
    use crate::CmdIdx;

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn routine() -> Routine {
        Routine::builder("r")
            .set(DeviceId(0), Value::ON, TimeDelta::from_millis(100))
            .build()
    }

    fn feed(sink: &mut dyn TraceSink) {
        let id = RoutineId(1);
        sink.record_submission(id, &routine(), t(0));
        sink.record(t(5), TraceEventKind::Started { routine: id });
        sink.record(
            t(5),
            TraceEventKind::CommandDispatched {
                routine: id,
                idx: CmdIdx(0),
                device: DeviceId(0),
            },
        );
        sink.record(
            t(40),
            TraceEventKind::StateChanged {
                device: DeviceId(0),
                value: Value::ON,
                by: Some(id),
                rollback: false,
            },
        );
        sink.record(
            t(40),
            TraceEventKind::CommandCompleted {
                routine: id,
                idx: CmdIdx(0),
                device: DeviceId(0),
                outcome: CmdOutcome::Success { observed: None },
            },
        );
        sink.record(t(40), TraceEventKind::Committed { routine: id });
    }

    fn end() -> BTreeMap<DeviceId, Value> {
        [(DeviceId(0), Value::ON)].into()
    }

    #[test]
    fn counters_match_full_trace() {
        let mut counters = RunCounters::new();
        let mut trace = Trace::new([(DeviceId(0), Value::OFF)].into());
        feed(&mut counters);
        feed(&mut trace);
        counters.finish(vec![OrderItem::Routine(RoutineId(1))], end(), &end());
        TraceSink::finish(
            &mut trace,
            vec![OrderItem::Routine(RoutineId(1))],
            end(),
            &end(),
        );
        assert_eq!(counters.submitted as usize, trace.records.len());
        assert_eq!(counters.committed as usize, trace.committed().len());
        assert_eq!(counters.aborted, 0);
        assert_eq!(counters.dispatches, 1);
        assert_eq!(counters.command_successes, 1);
        assert_eq!(counters.state_changes, 1);
        assert_eq!(counters.latencies_ms, vec![40]);
        assert_eq!(counters.end_time, trace.end_time());
        assert!(counters.congruent);
        assert_eq!(trace.final_order, vec![OrderItem::Routine(RoutineId(1))]);
        assert_eq!(trace.end_states, end());
    }

    #[test]
    fn digest_is_deterministic_and_order_sensitive() {
        let mut a = RunCounters::new();
        let mut b = RunCounters::new();
        feed(&mut a);
        feed(&mut b);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a, b);
        // A different event stream gives a different digest.
        let mut c = RunCounters::new();
        c.record_submission(RoutineId(1), &routine(), t(1));
        assert_ne!(a.digest, c.digest);
    }

    #[test]
    fn incongruent_end_state_is_detected() {
        let mut s = RunCounters::new();
        feed(&mut s);
        s.finish(
            Vec::new(),
            [(DeviceId(0), Value::OFF)].into(),
            &[(DeviceId(0), Value::ON)].into(),
        );
        assert!(!s.congruent);
    }

    #[test]
    fn order_mismatch_and_rollback_overhead_match_trace_definitions() {
        let two_cmds = Routine::builder("r2")
            .set(DeviceId(0), Value::ON, TimeDelta::from_millis(100))
            .set(DeviceId(1), Value::ON, TimeDelta::from_millis(100))
            .build();
        let mut s = RunCounters::new();
        s.record_submission(RoutineId(1), &two_cmds, t(0));
        s.record_submission(RoutineId(2), &routine(), t(1));
        s.record(
            t(10),
            TraceEventKind::Aborted {
                routine: RoutineId(1),
                reason: crate::trace::AbortReason::MustCommandFailed {
                    device: DeviceId(1),
                },
                executed: 1,
                rolled_back: 1,
            },
        );
        s.record(
            t(20),
            TraceEventKind::Committed {
                routine: RoutineId(2),
            },
        );
        s.finish(
            vec![
                OrderItem::Routine(RoutineId(2)),
                OrderItem::Failure(DeviceId(1)),
                OrderItem::Routine(RoutineId(1)),
            ],
            end(),
            &end(),
        );
        assert_eq!(s.order_mismatch, 1.0, "two routines fully swapped");
        assert_eq!(s.rollback_overhead(), 0.5, "1 of 2 commands rolled back");
        assert_eq!(s.latencies_ms, vec![10, 19]);
    }

    #[test]
    fn temporary_incongruence_detects_cross_writes() {
        // Mirror of the trace pass's definition test: R1 modifies device
        // 0, R2 changes it while R1 is still in flight → R1 of 2 suffered.
        let two_dev = Routine::builder("r1")
            .set(DeviceId(0), Value::ON, TimeDelta::from_millis(100))
            .set(DeviceId(1), Value::ON, TimeDelta::from_millis(100))
            .build();
        let mut s = RunCounters::new();
        s.record_submission(RoutineId(1), &two_dev, t(0));
        s.record_submission(RoutineId(2), &routine(), t(1));
        s.record(
            t(10),
            TraceEventKind::Started {
                routine: RoutineId(1),
            },
        );
        s.record(
            t(11),
            TraceEventKind::Started {
                routine: RoutineId(2),
            },
        );
        s.record(
            t(20),
            TraceEventKind::StateChanged {
                device: DeviceId(0),
                value: Value::ON,
                by: Some(RoutineId(1)),
                rollback: false,
            },
        );
        s.record(
            t(30),
            TraceEventKind::StateChanged {
                device: DeviceId(0),
                value: Value::OFF,
                by: Some(RoutineId(2)),
                rollback: false,
            },
        );
        s.record(
            t(40),
            TraceEventKind::Committed {
                routine: RoutineId(2),
            },
        );
        s.record(
            t(50),
            TraceEventKind::Committed {
                routine: RoutineId(1),
            },
        );
        s.finish(Vec::new(), end(), &end());
        assert!(
            (s.temporary_incongruence - 0.5).abs() < 1e-12,
            "R1 of 2 suffered: {}",
            s.temporary_incongruence
        );
        // Parallelism samples at the four start/end events: 1, 2, 1, 0.
        assert!((s.parallelism - 1.0).abs() < 1e-12);
    }

    #[test]
    fn writes_after_completion_are_not_incongruence() {
        let mut s = RunCounters::new();
        s.record_submission(RoutineId(1), &routine(), t(0));
        s.record_submission(RoutineId(2), &routine(), t(1));
        s.record(
            t(10),
            TraceEventKind::Started {
                routine: RoutineId(1),
            },
        );
        s.record(
            t(20),
            TraceEventKind::StateChanged {
                device: DeviceId(0),
                value: Value::ON,
                by: Some(RoutineId(1)),
                rollback: false,
            },
        );
        s.record(
            t(30),
            TraceEventKind::Committed {
                routine: RoutineId(1),
            },
        );
        s.record(
            t(31),
            TraceEventKind::Started {
                routine: RoutineId(2),
            },
        );
        s.record(
            t(40),
            TraceEventKind::StateChanged {
                device: DeviceId(0),
                value: Value::OFF,
                by: Some(RoutineId(2)),
                rollback: false,
            },
        );
        s.record(
            t(50),
            TraceEventKind::Committed {
                routine: RoutineId(2),
            },
        );
        s.finish(Vec::new(), end(), &end());
        assert_eq!(s.temporary_incongruence, 0.0);
    }

    #[test]
    fn end_states_are_captured_at_finish() {
        let mut s = RunCounters::new();
        feed(&mut s);
        s.finish(Vec::new(), end(), &end());
        assert_eq!(s.end_states, end());
    }

    #[test]
    fn devices_down_at_end_are_excluded_from_congruence() {
        let mut s = RunCounters::new();
        s.record(
            t(10),
            TraceEventKind::DeviceDownDetected {
                device: DeviceId(0),
            },
        );
        s.finish(
            Vec::new(),
            [(DeviceId(0), Value::OFF)].into(),
            &[(DeviceId(0), Value::ON)].into(),
        );
        assert!(s.congruent, "dead device cannot be rolled forward");
        assert_eq!(s.down_detections, 1);
    }
}
