//! Constant-memory latency histogram for service-mode SLO percentiles.
//!
//! The resident-fleet service runner records one submission latency per
//! routine across hours of simulated time; keeping raw samples per home
//! would grow without bound, and the fleet layer already keeps the rest
//! of its accounting constant-memory (`RunCounters`). This histogram
//! stores counts in logarithmically spaced buckets — 16 linear
//! sub-buckets per power of two — so any percentile is recoverable with
//! a relative error of at most 1/16 from a few KiB, and merging worker
//! shards is element-wise addition.

/// log2 of the sub-bucket count per octave.
const SUB_BITS: u32 = 4;
/// Linear sub-buckets per octave; also the first-exact-value threshold
/// (values below `SUB` get an exact bucket each).
const SUB: usize = 1 << SUB_BITS;
/// Octaves above the exact range. The top octave's lower bound is
/// `2^(SUB_BITS + OCTAVES - 1)` ms ≈ 1.09 years; anything larger clamps
/// into the last bucket.
const OCTAVES: usize = 36;
const BUCKETS: usize = SUB * (OCTAVES + 1);

/// Bucket index for a millisecond value: exact below [`SUB`], then
/// `(octave, top SUB_BITS bits below the leading one)`.
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let octave = (msb - SUB_BITS) as usize;
    let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    ((octave + 1) * SUB + sub).min(BUCKETS - 1)
}

/// Inclusive upper bound of a bucket — the value reported for any
/// percentile landing in it, so reported percentiles never understate.
fn bucket_upper(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let octave = (idx / SUB - 1) as u32;
    let sub = (idx % SUB) as u64;
    ((SUB as u64 + sub) << octave) + (1u64 << octave) - 1
}

/// A fixed-size log-bucketed histogram of millisecond latencies.
///
/// Recording, merging and percentile queries are all O(buckets) or
/// better; memory is a flat ~4.6 KiB regardless of sample count.
/// Percentiles are reported as the inclusive upper bound of the bucket
/// containing the requested rank, giving a guaranteed-conservative
/// value with relative error at most `1/16`.
///
/// # Examples
///
/// ```
/// use safehome_types::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for ms in [3, 5, 5, 9, 200] {
///     h.record(ms);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.percentile(0.5), Some(5));
/// assert!(h.percentile(0.999).unwrap() >= 200);
/// ```
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    /// Exact maximum, so the tail never reports a bucket bound below a
    /// value that was actually observed… clamped buckets included.
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            max: 0,
        }
    }

    /// Records one latency sample, in milliseconds.
    pub fn record(&mut self, ms: u64) {
        self.counts[bucket_index(ms)] += 1;
        self.count += 1;
        self.max = self.max.max(ms);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Adds every sample of `other` into `self` (shard merge).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }

    /// Forgets every sample, retaining the allocation.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.count = 0;
        self.max = 0;
    }

    /// The value at quantile `p` in `[0, 1]`: an upper bound `v` such
    /// that at least `ceil(p * count)` samples are `<= v`, within 1/16
    /// relative error of the true order statistic. `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                // The last bucket is open-ended (it absorbs clamped
                // values), so the tracked exact max is the only honest
                // bound there; elsewhere it tightens the reported bound
                // without ever undershooting.
                if idx == BUCKETS - 1 {
                    return Some(self.max);
                }
                return Some(bucket_upper(idx).min(self.max));
            }
        }
        Some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 1, 2, 3, 7, 15] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), Some(0));
        assert_eq!(h.percentile(0.5), Some(2));
        assert_eq!(h.percentile(1.0), Some(15));
        assert_eq!(h.max(), 15);
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.99), None);
    }

    #[test]
    fn percentiles_stay_within_relative_error_bound() {
        // Against the exact order statistic of a deterministic skewed
        // distribution: reported values must never undershoot and never
        // overshoot by more than 1/16.
        let mut h = LatencyHistogram::new();
        let mut samples: Vec<u64> = Vec::new();
        let mut x = 0x1234_5678u64;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 33) % 500_000; // up to ~8.3 min in ms
            samples.push(v);
            h.record(v);
        }
        samples.sort_unstable();
        for &p in &[0.5, 0.9, 0.95, 0.99, 0.999] {
            let rank = ((p * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1];
            let got = h.percentile(p).unwrap() as f64;
            assert!(
                got >= exact as f64,
                "p{p}: reported {got} under exact {exact}"
            );
            assert!(
                got <= exact as f64 * (1.0 + 1.0 / 16.0) + 1.0,
                "p{p}: reported {got} over error bound for exact {exact}"
            );
        }
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for v in 0..1_000u64 {
            let v = v * 37 % 90_000;
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max(), whole.max());
        for &p in &[0.5, 0.95, 0.99, 0.999] {
            assert_eq!(a.percentile(p), whole.percentile(p));
        }
    }

    #[test]
    fn huge_values_clamp_to_tracked_max() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(5);
        assert_eq!(h.percentile(1.0), Some(u64::MAX));
        assert_eq!(h.percentile(0.25), Some(5));
    }

    #[test]
    fn clear_resets() {
        let mut h = LatencyHistogram::new();
        h.record(42);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.5), None);
        h.record(7);
        assert_eq!(h.percentile(1.0), Some(7));
    }
}
