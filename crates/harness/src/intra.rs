//! Deterministic intra-home parallelism: conflict-clustered sub-runs.
//!
//! A home whose submissions split into device-disjoint clusters (no
//! shared footprint device, no cross-cluster `After` edge) can run each
//! cluster as an independent sub-driver — the EV engine's scheduling,
//! lineage and order state are all device-local, so a cluster's event
//! stream is exactly the projection of the sequential run onto its
//! devices. This module owns the two halves of that claim:
//!
//! - [`build_sub_specs`] projects a [`RunSpec`] onto each cluster
//!   (submissions filtered in order, `After` indices remapped, the full
//!   home kept so device ids stay stable);
//! - [`merge_sub_runs`] folds the finished sub-runs back into the *one*
//!   [`RunCounters`] the sequential driver would have produced —
//!   byte-identical, digest included.
//!
//! The merge reconstructs the sequential pop order instead of
//! approximating it. Every event a failure-free, deterministic-latency
//! run schedules passes through the backend's schedule funnel, so a
//! traced sub-driver's funnel log ([`crate::sim::FunnelEntry`]) covers
//! every pop: a stable sort by effective enqueue time *is* the
//! sub-run's pop order, and each entry's parent link (the construction
//! rank or causing pop) is enough to totally order pops *across*
//! clusters exactly as one shared queue would have:
//!
//! - construction events (absolute arrivals) sort by `(time, global
//!   submission index)` and precede same-instant dynamic events —
//!   construction fully precedes the first pop in a sequential run;
//! - dynamic events sort by `(time, merged position of the causing
//!   pop, call rank within that pop)` — the insertion-order tiebreak of
//!   the shared queue, reproduced from per-cluster logs.
//!
//! Replaying the per-pop sink-call segments in merged order through a
//! fresh [`RunCounters`] (routine ids renumbered densely in merged
//! submission order — the sequential assignment order), then finishing
//! with the k-way-merged witness order and per-cluster device-state
//! overlays, reproduces the sequential sink interaction call-for-call.
//!
//! Anything outside the proof's assumptions — failure plans, jittered
//! latency, non-EV models, a cluster that stalls — makes the caller
//! fall back to the sequential path (`None` from [`merge_sub_runs`] /
//! [`run_clustered`]).

use std::collections::BTreeMap;

use safehome_core::VisibilityModel;
use safehome_types::{
    sink::{RunCounters, TraceSink},
    trace::{OrderItem, TraceEventKind},
    DeviceId, Routine, RoutineId, Timestamp, Value,
};

use crate::sim::{Driver, FunnelEntry, FunnelParent};
use crate::spec::{Arrival, RunSpec, Submission};

/// A pluggable cluster planner: inspects a spec and either returns a
/// splitting partition or declines (sequential path). The canonical
/// implementation is `safehome-lint`'s `cluster::planner()`, which sits
/// above the harness in the dependency graph — the service accepts it
/// as an injected callback for the same reason it accepts lint's spec
/// gate that way.
pub type IntraPlanner = std::sync::Arc<dyn Fn(&RunSpec) -> Option<HomePartition> + Send + Sync>;

/// A partition of a home's submissions into conflict clusters:
/// `clusters[k]` holds the workload indices of cluster `k`, each in
/// original submission order. Produced by `safehome-lint`'s cluster
/// analysis (the lint crate sits above the harness, so the type lives
/// here and the analysis there).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HomePartition {
    /// Workload indices per cluster, ascending within each cluster.
    pub clusters: Vec<Vec<usize>>,
}

impl HomePartition {
    /// `true` when the partition actually splits the home.
    pub fn is_split(&self) -> bool {
        self.clusters.len() >= 2
    }
}

/// The cheap spec-level preconditions of the sub-run equivalence proof,
/// re-checked defensively by the harness (the lint planner is the
/// authority, but a misbehaving planner must degrade to the sequential
/// path, never to a wrong answer): an empty failure plan (no
/// injections, probes or cross-cluster failure serialization), a
/// latency model that never draws from the shared RNG, and the EV
/// model, whose scheduling state is device-local (GSV serializes
/// globally; PSV and WV are not covered by the proof).
pub fn spec_decomposable(spec: &RunSpec) -> bool {
    spec.failures.is_empty()
        && spec.latency.is_deterministic()
        && matches!(spec.config.model, VisibilityModel::Ev { .. })
}

/// Projects `spec` onto each cluster of `partition`: same home, config,
/// latency, seed and horizon; submissions filtered in original order
/// with `After` indices remapped to cluster-local positions.
///
/// # Panics
///
/// Panics if an `After` edge crosses clusters — a partition from the
/// cluster analysis never has one (After edges are union edges).
pub fn build_sub_specs(spec: &RunSpec, partition: &HomePartition) -> Vec<RunSpec> {
    partition
        .clusters
        .iter()
        .map(|locals| {
            let mut sub = RunSpec::new(spec.home.clone(), spec.config.clone());
            sub.failures = spec.failures.clone();
            sub.latency = spec.latency;
            sub.ping_interval = spec.ping_interval;
            sub.detect_timeout = spec.detect_timeout;
            sub.seed = spec.seed;
            sub.max_time = spec.max_time;
            let pos: BTreeMap<usize, usize> = locals
                .iter()
                .enumerate()
                .map(|(local, &global)| (global, local))
                .collect();
            for &global in locals {
                let s = &spec.submissions[global];
                let arrival = match s.arrival {
                    Arrival::At(at) => Arrival::At(at),
                    Arrival::After { index, delay } => Arrival::After {
                        index: *pos.get(&index).expect("After edge must not cross clusters"),
                        delay,
                    },
                };
                sub.submissions.push(Submission {
                    routine: s.routine.clone(),
                    arrival,
                });
            }
            sub
        })
        .collect()
}

/// One recorded sink call of a sub-run (the exact argument shapes
/// [`RunCounters`] reads, so replay reproduces its folds bit-for-bit).
#[derive(Debug, Clone)]
enum SinkCall {
    Submission {
        id: RoutineId,
        commands: u32,
        ideal_ms: u64,
        at: Timestamp,
    },
    Record {
        at: Timestamp,
        kind: TraceEventKind,
    },
}

/// Recording sink for one sub-run: the call stream segmented by pop
/// (via [`TraceSink::pop_boundary`]), plus the finish payload. The
/// merge interleaves segments across clusters and replays them.
#[derive(Debug, Clone, Default)]
pub struct SubRunLog {
    /// One segment per handled pop, in pop order (possibly empty — a
    /// stale engine timer records nothing).
    segments: Vec<Vec<SinkCall>>,
    final_order: Vec<OrderItem>,
    end_states: BTreeMap<DeviceId, Value>,
    committed_states: BTreeMap<DeviceId, Value>,
    finished: bool,
}

impl SubRunLog {
    /// A fresh, empty log.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, call: SinkCall) {
        self.segments
            .last_mut()
            .expect("sink calls only occur while handling a pop")
            .push(call);
    }
}

impl TraceSink for SubRunLog {
    fn record_submission(&mut self, id: RoutineId, routine: &Routine, at: Timestamp) {
        self.push(SinkCall::Submission {
            id,
            commands: routine.commands.len() as u32,
            ideal_ms: routine.ideal_runtime().as_millis().max(1),
            at,
        });
    }

    fn record(&mut self, at: Timestamp, kind: TraceEventKind) {
        self.push(SinkCall::Record { at, kind });
    }

    fn pop_boundary(&mut self) {
        self.segments.push(Vec::new());
    }

    fn finish(
        &mut self,
        final_order: Vec<OrderItem>,
        end_states: BTreeMap<DeviceId, Value>,
        committed_states: &BTreeMap<DeviceId, Value>,
    ) {
        self.final_order = final_order;
        self.end_states = end_states;
        self.committed_states = committed_states.clone();
        self.finished = true;
    }
}

/// Everything one finished sub-driver hands the merge.
#[derive(Debug)]
pub struct SubRun {
    /// The recorded sink-call stream (finished).
    pub log: SubRunLog,
    /// The backend's funnel log ([`crate::sim::SimBackend::take_funnel_log`]).
    pub funnel: Vec<FunnelEntry>,
    /// `true` iff the sub-run reached quiescence.
    pub completed: bool,
}

/// Rewrites every routine id a trace event carries through `map`.
fn remap_kind(kind: TraceEventKind, map: &BTreeMap<RoutineId, RoutineId>) -> TraceEventKind {
    let m = |r: RoutineId| map[&r];
    match kind {
        TraceEventKind::Submitted { routine } => TraceEventKind::Submitted {
            routine: m(routine),
        },
        TraceEventKind::Started { routine } => TraceEventKind::Started {
            routine: m(routine),
        },
        TraceEventKind::Committed { routine } => TraceEventKind::Committed {
            routine: m(routine),
        },
        TraceEventKind::Aborted {
            routine,
            reason,
            executed,
            rolled_back,
        } => TraceEventKind::Aborted {
            routine: m(routine),
            reason,
            executed,
            rolled_back,
        },
        TraceEventKind::CommandDispatched {
            routine,
            idx,
            device,
        } => TraceEventKind::CommandDispatched {
            routine: m(routine),
            idx,
            device,
        },
        TraceEventKind::CommandCompleted {
            routine,
            idx,
            device,
            outcome,
        } => TraceEventKind::CommandCompleted {
            routine: m(routine),
            idx,
            device,
            outcome,
        },
        TraceEventKind::BestEffortSkipped {
            routine,
            idx,
            device,
        } => TraceEventKind::BestEffortSkipped {
            routine: m(routine),
            idx,
            device,
        },
        TraceEventKind::StateChanged {
            device,
            value,
            by,
            rollback,
        } => TraceEventKind::StateChanged {
            device,
            value,
            by: by.map(m),
            rollback,
        },
        other @ (TraceEventKind::DeviceDownDetected { .. }
        | TraceEventKind::DeviceUpDetected { .. }) => other,
    }
}

/// Merge-order key of one pending pop. Ordering reproduces the shared
/// queue's (time, insertion) pop order: construction events (`dyn_ = 0`)
/// precede same-instant dynamic ones and tiebreak on global submission
/// index; dynamic events tiebreak on (merged position of the causing
/// pop, call rank within it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct PopKey {
    t: Timestamp,
    dyn_: u8,
    seq: u64,
    rank: u32,
}

/// Folds finished sub-runs back into the sequential [`RunCounters`].
///
/// Returns `None` — fall back to the sequential path — when any
/// sub-run stalled (a sequential stall halts every cluster at once, so
/// the merged result would diverge), was not finished, or violates the
/// funnel-coverage invariant (a sign the spec gate was bypassed).
pub fn merge_sub_runs(
    spec: &RunSpec,
    partition: &HomePartition,
    subs: Vec<SubRun>,
) -> Option<RunCounters> {
    if !spec_decomposable(spec) || subs.len() != partition.clusters.len() {
        return None;
    }
    let k = subs.len();
    let mut pops: Vec<Vec<FunnelEntry>> = Vec::with_capacity(k);
    let mut at_globals: Vec<Vec<usize>> = Vec::with_capacity(k);
    for (c, sub) in subs.iter().enumerate() {
        if !sub.completed || !sub.log.finished {
            return None;
        }
        // Pop order = stable sort of the funnel log by effective time
        // (the queue pops in (time, insertion) order and the log is in
        // insertion order). A quiescent, failure-free run pops every
        // funnel-scheduled event, so the counts must line up.
        let mut order: Vec<usize> = (0..sub.funnel.len()).collect();
        order.sort_by_key(|&i| sub.funnel[i].t_eff);
        if order.len() != sub.log.segments.len() {
            return None;
        }
        pops.push(order.into_iter().map(|i| sub.funnel[i]).collect());
        // Construction rank r is the r-th absolute arrival of the
        // cluster, in local (= original) submission order.
        at_globals.push(
            partition.clusters[c]
                .iter()
                .copied()
                .filter(|&g| matches!(spec.submissions[g].arrival, Arrival::At(_)))
                .collect(),
        );
    }

    // K-way merge of per-cluster pop sequences.
    let mut cursor = vec![0usize; k];
    let mut gpos: Vec<Vec<u64>> = pops.iter().map(|p| vec![0; p.len()]).collect();
    let mut next_gpos = 0u64;
    let mut counters = RunCounters::new();
    let mut remap: Vec<BTreeMap<RoutineId, RoutineId>> = vec![BTreeMap::new(); k];
    let mut next_id = 1u64;
    loop {
        let mut best: Option<(PopKey, usize)> = None;
        for c in 0..k {
            let Some(entry) = pops[c].get(cursor[c]) else {
                continue;
            };
            let key = match entry.parent {
                FunnelParent::Init { rank } => PopKey {
                    t: entry.t_eff,
                    dyn_: 0,
                    seq: at_globals[c][rank as usize] as u64,
                    rank: 0,
                },
                FunnelParent::Pop { pop, rank } => PopKey {
                    t: entry.t_eff,
                    dyn_: 1,
                    seq: gpos[c][pop as usize],
                    rank,
                },
            };
            if best.is_none_or(|(b, _)| key < b) {
                best = Some((key, c));
            }
        }
        let Some((_, c)) = best else {
            break;
        };
        let j = cursor[c];
        cursor[c] += 1;
        gpos[c][j] = next_gpos;
        next_gpos += 1;
        for call in &subs[c].log.segments[j] {
            match *call {
                SinkCall::Submission {
                    id,
                    commands,
                    ideal_ms,
                    at,
                } => {
                    // Dense ids in merged submission-pop order — exactly
                    // the order the sequential engine assigns them.
                    let global = RoutineId(next_id);
                    next_id += 1;
                    remap[c].insert(id, global);
                    counters.record_submission_shape(global, commands, ideal_ms, at);
                }
                SinkCall::Record { at, ref kind } => {
                    counters.record(at, remap_kind(kind.clone(), &remap[c]));
                }
            }
        }
    }

    // Witness order: each cluster's order is its own min-id Kahn sort
    // over cluster-local edges, and the per-cluster remap is monotone,
    // so merging by smallest remapped head reproduces the global
    // min-ready Kahn order. Failure-free runs carry only routines.
    let mut witness_heads: Vec<std::iter::Peekable<std::vec::IntoIter<RoutineId>>> = Vec::new();
    for (c, sub) in subs.iter().enumerate() {
        let mut ids = Vec::with_capacity(sub.log.final_order.len());
        for item in &sub.log.final_order {
            match item {
                OrderItem::Routine(r) => ids.push(remap[c][r]),
                _ => return None, // failure/restart events: gate bypassed
            }
        }
        witness_heads.push(ids.into_iter().peekable());
    }
    let mut witness = Vec::new();
    loop {
        let mut best: Option<(RoutineId, usize)> = None;
        for (c, it) in witness_heads.iter_mut().enumerate() {
            if let Some(&r) = it.peek() {
                if best.is_none_or(|(b, _)| r < b) {
                    best = Some((r, c));
                }
            }
        }
        let Some((r, c)) = best else {
            break;
        };
        witness_heads[c].next();
        witness.push(OrderItem::Routine(r));
    }

    // Device states: each device is touched by at most one cluster
    // (shared footprints force a union), and a cluster leaves foreign
    // devices at their initial state — overlay every cluster's own
    // devices over the initial map.
    let mut end_states: BTreeMap<DeviceId, Value> = spec.home.initial_states();
    let mut committed_states = end_states.clone();
    for (c, locals) in partition.clusters.iter().enumerate() {
        let mut owned: Vec<DeviceId> = locals
            .iter()
            .flat_map(|&g| spec.submissions[g].routine.devices())
            .collect();
        owned.sort_unstable();
        owned.dedup();
        for d in owned {
            if let Some(&v) = subs[c].log.end_states.get(&d) {
                end_states.insert(d, v);
            }
            if let Some(&v) = subs[c].log.committed_states.get(&d) {
                committed_states.insert(d, v);
            }
        }
    }
    counters.finish(witness, end_states, &committed_states);
    Some(counters)
}

/// Runs `spec` as one sub-driver per cluster (to quiescence, in-process)
/// and merges the results. `None` means "run the sequential path": the
/// gate rejected the spec, the partition does not split the home, or a
/// sub-run stalled.
pub fn run_clustered(spec: &RunSpec, partition: &HomePartition) -> Option<RunCounters> {
    if !partition.is_split() || !spec_decomposable(spec) {
        return None;
    }
    let sub_specs = build_sub_specs(spec, partition);
    let mut subs = Vec::with_capacity(sub_specs.len());
    for sub_spec in &sub_specs {
        let mut d = Driver::with_sink_traced(sub_spec, SubRunLog::new());
        d.run_to_quiescence();
        let funnel = d.backend_mut().take_funnel_log();
        let (log, _committed, completed) = d.into_output();
        subs.push(SubRun {
            log,
            funnel,
            completed,
        });
    }
    merge_sub_runs(spec, partition, subs)
}
