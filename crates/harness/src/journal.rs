//! Crash/recovery: rebuilding a [`RuntimeCore`] purely by journal replay.
//!
//! A controller crash loses every piece of in-memory runtime state —
//! engine lineages, deferral chains, the sink's counters, the submission
//! tables. The durable [`ExecutionJournal`] (see
//! [`safehome_core::journal`]) is the only thing that survives, and
//! [`recover`] turns it back into a live core:
//!
//! 1. the `Genesis` record seeds a fresh [`Engine`] with the initial
//!    committed states;
//! 2. the journaled **input** events (submissions, command completions,
//!    detector edges, timer firings) are re-fed through the normal
//!    runtime callbacks, which deterministically re-derive every lineage,
//!    lock, deferral and sink record;
//! 3. the journal hook runs in **verify** mode meanwhile: every record
//!    the replay re-derives is compared against the journal, so a
//!    corrupted or reordered log is rejected at the exact sequence number
//!    where history diverges, and a tail torn off by the crash mid-append
//!    is repaired by re-derivation.
//!
//! What replay cannot decide on its own is the fate of **in-flight
//! writes** — journaled `WriteScheduled`/`WriteStarted` but not
//! `WriteCompleted`. The [`RecoveryReport`] classifies them:
//!
//! - writes journaled `Completed` are the exactly-once cache: they are
//!   *never* re-issued;
//! - in-flight idempotent writes (`Set`/`Read`, reversible undo) are
//!   re-dispatched exactly once by [`HomeRuntime::redrive`], journaling
//!   `WriteRetrying` first so a second crash knows the attempt count;
//! - in-flight writes journaled `Started` whose undo policy is
//!   [`UndoPolicy::Irreversible`] can be neither verified nor undone:
//!   [`recover`] emits the "physically irreversible" feedback note (the
//!   same EV/JiT wording the engine uses when rolling an irreversible
//!   command back) into the report and the journal, and `redrive`
//!   synthesizes a *failed* completion for them so the owning routine
//!   aborts and its reversible effects are rolled back.
//!
//! Two recovery modes fall out:
//!
//! - **Resume** (the sim's crash/restore injection): the world — the
//!   backend with its queue, devices, RNG and detector — survived; only
//!   the controller died. [`HomeRuntime::resume`] rebinds the recovered
//!   core to the surviving backend and the continuation is
//!   event-for-event identical to an uncrashed run (the crash-recovery
//!   tests pin this with `RunCounters` digest equality).
//! - **Redrive** (process restart with a fresh backend): pending
//!   submissions and timers are re-scheduled and in-flight writes
//!   re-driven per the classification above.

use std::collections::{BTreeMap, BTreeSet};

use safehome_core::journal::{EventPayload, ExecutionJournal, JournalWriter};
use safehome_core::{Engine, EngineConfig, TimerId};
use safehome_devices::{Detection, DispatchTicket};
use safehome_types::{
    sink::TraceSink, Action, CmdIdx, DeviceId, Routine, RoutineId, TimeDelta, Timestamp, UndoPolicy,
};

use crate::runtime::{Backend, CommandOutcome, HomeRuntime, HomeTables, Polled, RuntimeCore};
use crate::spec::{Arrival, Submission};

/// A write journaled scheduled/started but not completed at the crash.
#[derive(Debug, Clone, PartialEq)]
pub struct InflightWrite {
    /// Owning routine.
    pub routine: RoutineId,
    /// Command index within the routine.
    pub idx: CmdIdx,
    /// Target device.
    pub device: DeviceId,
    /// The command action (sufficient to re-issue without the spec).
    pub action: Action,
    /// Actuation duration.
    pub duration: TimeDelta,
    /// `true` for rollback (undo) writes.
    pub rollback: bool,
    /// `true` if the write reached phase 2 (`WriteStarted`) — the
    /// command may have reached the device.
    pub started: bool,
    /// Prior recovery re-issues (`WriteRetrying` records).
    pub attempts: u32,
    /// `true` when the command's undo policy is `Irreversible`.
    pub irreversible: bool,
}

/// What [`recover`] reconstructed beyond the core itself.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Input events re-fed during replay.
    pub replayed: usize,
    /// `true` if the journal's tail was torn by the crash and repaired
    /// by re-derivation.
    pub tail_repaired: bool,
    /// The journal tip time — redrive schedules nothing earlier.
    pub restart_at: Timestamp,
    /// Writes in flight at the crash (see [`InflightWrite`]).
    pub inflight: Vec<InflightWrite>,
    /// Timers armed but not yet fired, with their due times.
    pub pending_timers: Vec<(Timestamp, TimerId)>,
    /// Workload submissions not yet submitted: un-arrived `At` entries
    /// plus released-but-unsubmitted deferrals, with their due times.
    pub pending_submits: Vec<(Timestamp, usize)>,
    /// Human-readable recovery notes (the "physically irreversible"
    /// feedback for started-but-not-completed irreversible writes).
    pub notes: Vec<String>,
}

/// A recovered core plus the report describing what needs re-driving.
pub struct Recovered<'a, S: TraceSink> {
    /// The rebuilt runtime core, journal hook attached (verify mode,
    /// positioned at the journal's end — further execution appends).
    pub core: RuntimeCore<'a, S>,
    /// The recovery classification.
    pub report: RecoveryReport,
}

/// The inert [`Backend`] replay runs against: replayed effects must not
/// re-dispatch commands or re-arm timers (in resume mode the surviving
/// backend already has them; in redrive mode [`HomeRuntime::redrive`]
/// re-issues them deliberately), so every scheduling call is a no-op.
#[derive(Debug, Default)]
pub struct ReplayBackend {
    now: Timestamp,
}

impl Backend for ReplayBackend {
    fn idle(&self) -> bool {
        true
    }

    fn now(&self) -> Timestamp {
        self.now
    }

    fn dispatch(&mut self, _now: Timestamp, _device: DeviceId, _ticket: DispatchTicket) {}

    fn set_timer(&mut self, _at: Timestamp, _timer: TimerId) {}

    fn schedule_submit(&mut self, _at: Timestamp, _index: usize) {}

    fn poll<S: TraceSink>(&mut self, _core: &mut RuntimeCore<'_, S>) -> Polled {
        unreachable!("replay is driven from the journal, never polled")
    }

    fn end_states(&mut self) -> BTreeMap<DeviceId, safehome_types::Value> {
        BTreeMap::new()
    }
}

fn poison_check<S: TraceSink>(core: &RuntimeCore<'_, S>) -> Result<(), String> {
    match core.journal.as_ref().and_then(JournalWriter::poisoned) {
        Some(msg) => Err(msg.to_string()),
        None => Ok(()),
    }
}

/// Rebuilds a [`RuntimeCore`] from a journal, purely by replay.
///
/// `config` and `workload` are the run's static specification (the same
/// values the crashed run was assembled with — replay cross-checks the
/// workload routines and engine-assigned ids against the journal);
/// `sink` is a fresh sink, rebuilt to the crashed sink's exact state by
/// the replayed record stream.
///
/// Fails — without side effects — when the journal violates its replay
/// invariants, describes a different run, or diverges from what the
/// deterministic engine re-derives.
pub fn recover<'a, S: TraceSink>(
    journal: ExecutionJournal,
    config: EngineConfig,
    workload: &'a [Submission],
    sink: S,
) -> Result<Recovered<'a, S>, String> {
    journal.check_invariants()?;
    let Some(first) = journal.events().first() else {
        return Err("cannot recover from an empty journal".into());
    };
    let EventPayload::Genesis {
        initial,
        workload: journaled_len,
        horizon,
    } = &first.payload
    else {
        return Err("journal does not begin with a genesis record".into());
    };
    if *journaled_len != workload.len() as u64 {
        return Err(format!(
            "journal describes a workload of {journaled_len} submissions, got {}",
            workload.len()
        ));
    }
    let horizon = *horizon;
    let engine = Engine::new(config, initial);
    let writer = JournalWriter::verify(journal);
    let mut rb = ReplayBackend::default();
    // Construction and workload scheduling re-derive (and verify) the
    // genesis and deferral-arming records.
    let mut core = RuntimeCore::with_journal(
        engine,
        sink,
        workload,
        horizon,
        HomeTables::new(),
        Some(writer),
    );
    core.schedule_workload(&mut rb);
    poison_check(&core)?;

    let mut replayed = 0usize;
    while let Some((at, seq, payload)) = core
        .journal
        .as_ref()
        .and_then(JournalWriter::peek)
        .map(|ev| (ev.at, ev.seq, ev.payload.clone()))
    {
        rb.now = at;
        match payload {
            EventPayload::RoutineSubmitted {
                sub: Some(i),
                id: _,
                routine: _,
            } => core.submit_indexed(i as usize, at, &mut rb),
            EventPayload::RoutineSubmitted {
                sub: None, routine, ..
            } => {
                core.submit_now(routine, at, &mut rb)
                    .map_err(|e| format!("journal seq {seq}: re-submission failed: {e}"))?;
            }
            EventPayload::WriteCompleted {
                routine,
                idx,
                device,
                action,
                duration,
                rollback,
                success,
                observed,
                new_state,
                edge,
            } => {
                let detection = edge.map(|up| {
                    if up {
                        Detection::Up(device)
                    } else {
                        Detection::Down(device)
                    }
                });
                core.on_command(
                    at,
                    CommandOutcome {
                        device,
                        ticket: DispatchTicket {
                            routine: Some(routine),
                            idx,
                            action,
                            duration,
                            rollback,
                        },
                        success,
                        observed,
                        new_state,
                        detection,
                    },
                    &mut rb,
                );
            }
            EventPayload::DeviceDown { device } => {
                core.emit_detection(Detection::Down(device), at, &mut rb)
            }
            EventPayload::DeviceUp { device } => {
                core.emit_detection(Detection::Up(device), at, &mut rb)
            }
            EventPayload::TimerFired { timer } => core.on_timer(timer, at, &mut rb),
            // Recovery-only records: replay does not regenerate them.
            EventPayload::WriteRetrying { .. } | EventPayload::RecoveryNote { .. } => {
                if let Some(w) = core.journal.as_mut() {
                    w.skip();
                }
                continue;
            }
            other => {
                return Err(format!(
                    "journal seq {seq}: derived record {:?} was not re-produced by replay \
                     (corrupted or out-of-order log)",
                    other.kind()
                ));
            }
        }
        replayed += 1;
        poison_check(&core)?;
    }
    poison_check(&core)?;

    let writer = core.journal.as_ref().expect("journal hook installed");
    let tail_repaired = writer.repaired_tail();
    core.engine
        .check_invariants_with_journal(writer.journal())?;
    let mut report = analyze(writer.journal(), workload);
    report.replayed = replayed;
    report.tail_repaired = tail_repaired;
    // The irreversible notes become durable: a second crash replays past
    // them (they are recovery-only records) instead of re-deriving them.
    let restart_at = report.restart_at;
    let mut notes = Vec::new();
    for w in &report.inflight {
        if !(w.started && w.irreversible) {
            continue;
        }
        let message = format!(
            "recovery: command {} on {} of {} was journaled started but not completed \
             across a crash and is physically irreversible; restoring state only — the \
             physical effect cannot be verified or undone",
            w.idx, w.device, w.routine
        );
        core.jot(
            restart_at,
            EventPayload::RecoveryNote {
                routine: Some(w.routine),
                message: message.clone(),
            },
        );
        notes.push(message);
    }
    report.notes = notes;
    Ok(Recovered { core, report })
}

/// Scans a (validated) journal for everything that was pending at the
/// crash: in-flight writes, armed-but-unfired timers, unsubmitted
/// workload entries.
fn analyze(journal: &ExecutionJournal, workload: &[Submission]) -> RecoveryReport {
    let mut routines: BTreeMap<RoutineId, Routine> = BTreeMap::new();
    let mut inflight: BTreeMap<(RoutineId, CmdIdx, bool), InflightWrite> = BTreeMap::new();
    let mut timers: Vec<(TimerId, Timestamp)> = Vec::new();
    let mut submitted: BTreeSet<usize> = BTreeSet::new();
    let mut released: BTreeMap<usize, Timestamp> = BTreeMap::new();
    for ev in journal.events() {
        match &ev.payload {
            EventPayload::RoutineSubmitted { id, sub, routine } => {
                routines.insert(*id, routine.clone());
                if let Some(s) = sub {
                    submitted.insert(*s as usize);
                    released.remove(&(*s as usize));
                }
            }
            EventPayload::WriteScheduled {
                routine,
                idx,
                device,
                action,
                duration,
                rollback,
            } => {
                let irreversible = routines
                    .get(routine)
                    .and_then(|r| r.commands.get(idx.index()))
                    .is_some_and(|c| c.undo == UndoPolicy::Irreversible);
                inflight.insert(
                    (*routine, *idx, *rollback),
                    InflightWrite {
                        routine: *routine,
                        idx: *idx,
                        device: *device,
                        action: *action,
                        duration: *duration,
                        rollback: *rollback,
                        started: false,
                        attempts: 0,
                        irreversible,
                    },
                );
            }
            EventPayload::WriteStarted {
                routine,
                idx,
                rollback,
                ..
            } => {
                if let Some(w) = inflight.get_mut(&(*routine, *idx, *rollback)) {
                    w.started = true;
                }
            }
            EventPayload::WriteRetrying {
                routine,
                idx,
                rollback,
                ..
            } => {
                if let Some(w) = inflight.get_mut(&(*routine, *idx, *rollback)) {
                    w.attempts += 1;
                }
            }
            EventPayload::WriteCompleted {
                routine,
                idx,
                rollback,
                ..
            } => {
                inflight.remove(&(*routine, *idx, *rollback));
            }
            EventPayload::TimerArmed { timer, fire_at } => timers.push((*timer, *fire_at)),
            EventPayload::TimerFired { timer } => {
                if let Some(pos) = timers.iter().position(|(t, _)| t == timer) {
                    timers.remove(pos);
                }
            }
            EventPayload::DeferralReleased { dep, at, .. } => {
                released.insert(*dep as usize, *at);
            }
            _ => {}
        }
    }
    let mut pending_submits: Vec<(Timestamp, usize)> = Vec::new();
    for (i, s) in workload.iter().enumerate() {
        if submitted.contains(&i) {
            continue;
        }
        match s.arrival {
            Arrival::At(at) => pending_submits.push((at, i)),
            // Unreleased deferrals stay parked in the rebuilt tables and
            // release when their predecessor finishes; released ones were
            // scheduled on the dead backend and must be re-scheduled.
            Arrival::After { .. } => {
                if let Some(&at) = released.get(&i) {
                    pending_submits.push((at, i));
                }
            }
        }
    }
    pending_submits.sort_unstable();
    RecoveryReport {
        replayed: 0,
        tail_repaired: false,
        restart_at: journal.tip_time(),
        inflight: inflight.into_values().collect(),
        pending_timers: timers.into_iter().map(|(t, at)| (at, t)).collect(),
        pending_submits,
        notes: Vec::new(),
    }
}

impl<'a, B: Backend, S: TraceSink> HomeRuntime<'a, B, S> {
    /// Re-drives recovered work onto a **fresh** backend (the world was
    /// lost too — a full process restart, not the sim's crash/restore):
    ///
    /// - pending submissions and armed-but-unfired timers are
    ///   re-scheduled (no earlier than the journal tip);
    /// - in-flight idempotent writes are re-dispatched **exactly once**,
    ///   journaling `WriteRetrying` first — completed writes are never in
    ///   the report, so the journal's phase-3 records are the
    ///   exactly-once cache;
    /// - started irreversible writes are *not* re-issued (re-firing a
    ///   physical one-way effect is worse than losing it): a failed
    ///   completion is synthesized so the owning routine aborts and its
    ///   reversible effects roll back.
    ///
    /// Not needed after [`HomeRuntime::resume`] onto a surviving backend,
    /// whose queue still holds all of this.
    pub fn redrive(&mut self, report: &RecoveryReport) {
        let at = report.restart_at.max(self.backend.now());
        for &(t, i) in &report.pending_submits {
            self.backend.schedule_submit(t.max(at), i);
        }
        for &(t, timer) in &report.pending_timers {
            self.backend.set_timer(t.max(at), timer);
        }
        let mut lost: Vec<&InflightWrite> = Vec::new();
        for w in &report.inflight {
            if w.started && w.irreversible {
                lost.push(w);
                continue;
            }
            self.core.jot(
                at,
                EventPayload::WriteRetrying {
                    routine: w.routine,
                    idx: w.idx,
                    device: w.device,
                    rollback: w.rollback,
                    attempt: w.attempts + 1,
                },
            );
            self.backend.dispatch(
                at,
                w.device,
                DispatchTicket {
                    routine: Some(w.routine),
                    idx: w.idx,
                    action: w.action,
                    duration: w.duration,
                    rollback: w.rollback,
                },
            );
        }
        for w in lost {
            self.core.on_command(
                at,
                CommandOutcome {
                    device: w.device,
                    ticket: DispatchTicket {
                        routine: Some(w.routine),
                        idx: w.idx,
                        action: w.action,
                        duration: w.duration,
                        rollback: w.rollback,
                    },
                    success: false,
                    observed: None,
                    new_state: None,
                    detection: None,
                },
                &mut self.backend,
            );
        }
        self.core.done = false;
        self.core.completed = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Step;
    use crate::sim::{Driver, SimBackend};
    use crate::spec::RunSpec;
    use safehome_core::VisibilityModel;
    use safehome_devices::catalog::plug_home;
    use safehome_devices::FailurePlan;
    use safehome_types::sink::RunCounters;
    use safehome_types::Value;

    fn d(i: u32) -> DeviceId {
        DeviceId(i)
    }

    fn simple_routine(devs: &[u32], v: Value) -> Routine {
        let mut b = Routine::builder("r");
        for &i in devs {
            b = b.set(d(i), v, TimeDelta::from_millis(100));
        }
        b.build()
    }

    /// A busy little spec: overlapping routines on shared devices, an
    /// `After` chain and a fail/recover window, so every journal record
    /// kind shows up and crashes land in interesting states.
    fn crashy_spec() -> RunSpec {
        let mut spec =
            RunSpec::new(plug_home(4), EngineConfig::new(VisibilityModel::ev())).with_seed(7);
        spec.failures = FailurePlan::none().fail_recover(
            d(3),
            Timestamp::from_millis(350),
            TimeDelta::from_secs(2),
        );
        let mut first = 0;
        for i in 0..4u64 {
            first = spec.submit(Submission::at(
                simple_routine(&[(i % 4) as u32, ((i + 1) % 4) as u32], Value::ON),
                Timestamp::from_millis(i * 150),
            ));
        }
        spec.submit(Submission::after(
            simple_routine(&[2], Value::OFF),
            first,
            TimeDelta::from_millis(50),
        ));
        spec
    }

    /// A routine whose second command is physically irreversible.
    fn irreversible_spec() -> RunSpec {
        let mut spec = RunSpec::new(plug_home(2), EngineConfig::new(VisibilityModel::ev()));
        let r = Routine::builder("sprinkler")
            .set(d(0), Value::ON, TimeDelta::from_millis(100))
            .set_irreversible(d(1), Value::ON, TimeDelta::from_millis(100))
            .build();
        spec.submit(Submission::at(r, Timestamp::ZERO));
        spec
    }

    fn uncrashed(spec: &RunSpec) -> (RunCounters, BTreeMap<DeviceId, safehome_types::Value>) {
        let mut drv = Driver::with_sink(spec, RunCounters::new());
        assert!(drv.run_to_quiescence());
        let (counters, committed, done) = drv.into_output();
        assert!(done);
        (counters, committed)
    }

    /// Steps a journaled run until its journal holds at least `k`
    /// records (or the run ends first).
    fn run_journaled_until(spec: &RunSpec, k: usize) -> Driver<'_, RunCounters> {
        let mut drv = Driver::with_journal(spec, RunCounters::new());
        while drv.journal().expect("journaled").len() < k && !drv.is_done() {
            match drv.step() {
                Step::Event(_) => {}
                Step::Quiescent | Step::Stalled => break,
                Step::Idle => unreachable!("the simulation backend never idles"),
            }
        }
        drv
    }

    fn journal_has(j: &ExecutionJournal, pred: impl Fn(&EventPayload) -> bool) -> bool {
        j.events().iter().any(|e| pred(&e.payload))
    }

    /// The tentpole's determinism pin: crash at *every* journal length,
    /// recover by replay, resume onto the surviving world, and the full
    /// [`RunCounters`] — committed/aborted counts, latencies, end time
    /// and the event-stream digest — must equal the uncrashed run's.
    #[test]
    fn resume_after_crash_matches_uncrashed_at_every_index() {
        let spec = crashy_spec();
        let (base, base_states) = uncrashed(&spec);
        let mut full = Driver::with_journal(&spec, RunCounters::new());
        assert!(full.run_to_quiescence());
        let total = full.journal().expect("journaled").len();
        assert!(total > 20, "spec too quiet to exercise recovery ({total})");
        for k in 0..=total {
            let drv = run_journaled_until(&spec, k);
            let (journal, world) = drv.crash();
            let rec = recover(
                journal,
                spec.config.clone(),
                &spec.submissions,
                RunCounters::new(),
            )
            .unwrap_or_else(|e| panic!("crash index {k}: {e}"));
            assert!(
                rec.report.notes.is_empty(),
                "crash index {k}: no irreversible commands in this spec"
            );
            let mut resumed = HomeRuntime::resume(rec.core, world);
            assert!(resumed.run_to_quiescence(), "crash index {k}");
            resumed.check_invariants().unwrap();
            let (counters, states, done) = resumed.into_output();
            assert!(done, "crash index {k}");
            assert_eq!(counters, base, "crash index {k}: counters diverged");
            assert_eq!(states, base_states, "crash index {k}: states diverged");
        }
    }

    /// Journaling must not perturb the recorded event stream: the
    /// counters (digest included) match a journal-free run exactly.
    #[test]
    fn journaling_is_digest_neutral() {
        let spec = crashy_spec();
        let (base, _) = uncrashed(&spec);
        let mut drv = Driver::with_journal(&spec, RunCounters::new());
        assert!(drv.run_to_quiescence());
        let (counters, _, _) = drv.into_output();
        assert_eq!(counters, base);
    }

    /// The service runner's eviction contract: at a *cold* point —
    /// engine quiescent, world holding nothing but future workload
    /// submissions — a journaled home may collapse to `{journal,
    /// device states, RNG}` and discard its pooled simulator state
    /// entirely. Resurrection (journal replay + world snapshot +
    /// redrive of the pending submissions at their original absolute
    /// times) must then be event-for-event invisible: counters, digest
    /// and end states equal a never-evicted run, through *repeated*
    /// evict/recover cycles.
    #[test]
    fn quiescent_evict_and_resurrect_matches_unevicted() {
        let mut spec =
            RunSpec::new(plug_home(3), EngineConfig::new(VisibilityModel::ev())).with_seed(11);
        // Sparse absolute arrivals: cold gaps between routine clusters.
        for (i, at) in [0u64, 400_000, 800_000, 800_000].into_iter().enumerate() {
            let i = i as u32;
            spec.submit(Submission::at(
                simple_routine(&[i % 3, (i + 1) % 3], Value::ON),
                Timestamp::from_millis(at),
            ));
        }
        let (want, want_states) = uncrashed(&spec);

        let mut drv = Driver::with_journal(&spec, RunCounters::new());
        let mut evictions = 0;
        loop {
            if drv.is_done() {
                break;
            }
            if evictions < 8 && drv.engine().quiescent() && drv.backend().only_submits_pending() {
                let (journal, backend) = drv.crash();
                let (states, rng) = backend.into_world_snapshot();
                let rec = recover(
                    journal,
                    spec.config.clone(),
                    &spec.submissions,
                    RunCounters::new(),
                )
                .expect("an eviction-time journal always replays");
                assert!(
                    rec.report.inflight.is_empty(),
                    "cold means nothing in flight"
                );
                assert!(
                    rec.report.pending_timers.is_empty(),
                    "cold means no armed timers"
                );
                drv = HomeRuntime::resume(rec.core, SimBackend::resurrect(&spec, &states, rng));
                drv.redrive(&rec.report);
                evictions += 1;
            }
            match drv.step() {
                Step::Event(_) | Step::Idle => {}
                Step::Quiescent | Step::Stalled => break,
            }
        }
        assert!(evictions > 0, "the sparse spec must hit cold points");
        drv.check_invariants().unwrap();
        let (counters, states, done) = drv.into_output();
        assert!(done);
        assert_eq!(counters, want, "eviction must be invisible in the counters");
        assert_eq!(
            states, want_states,
            "eviction must be invisible in end states"
        );
    }

    /// Engine + journal invariants hold at every step boundary.
    #[test]
    fn invariants_hold_at_every_step() {
        let spec = crashy_spec();
        let mut drv = Driver::with_journal(&spec, RunCounters::new());
        loop {
            drv.check_invariants().unwrap();
            match drv.step() {
                Step::Event(_) => {}
                _ => break,
            }
        }
        drv.check_invariants().unwrap();
    }

    /// The journal survives its serialized form: crash, round-trip the
    /// journal through JSON, recover from the parsed copy, resume.
    #[test]
    fn json_roundtrip_then_recover_resumes_cleanly() {
        let spec = crashy_spec();
        let drv = run_journaled_until(&spec, 40);
        let (journal, world) = drv.crash();
        let text = journal.to_string_pretty();
        let parsed = ExecutionJournal::parse(&text).unwrap();
        assert_eq!(parsed, journal, "JSON round-trip must be lossless");
        let rec = recover(
            parsed,
            spec.config.clone(),
            &spec.submissions,
            RunCounters::new(),
        )
        .unwrap();
        let mut resumed = HomeRuntime::resume(rec.core, world);
        assert!(resumed.run_to_quiescence());
        resumed.check_invariants().unwrap();
    }

    /// A derived record whose payload was tampered with (device flipped;
    /// the replay invariants still hold) is caught by verify-mode replay
    /// at its exact sequence number.
    #[test]
    fn tampered_derived_record_is_rejected_at_its_seq() {
        let spec = crashy_spec();
        let mut full = Driver::with_journal(&spec, RunCounters::new());
        assert!(full.run_to_quiescence());
        let (mut journal, _world) = full.crash();
        let idx = journal
            .events()
            .iter()
            .position(|e| matches!(e.payload, EventPayload::WriteScheduled { .. }))
            .expect("run dispatched at least one write");
        let seq = journal.events()[idx].seq;
        if let EventPayload::WriteScheduled { device, .. } = &mut journal.events_mut()[idx].payload
        {
            *device = DeviceId(device.0 ^ 1);
        }
        let err = recover(
            journal,
            spec.config.clone(),
            &spec.submissions,
            RunCounters::new(),
        )
        .err()
        .expect("recovery must fail");
        assert!(
            err.contains(&format!("seq {seq}")),
            "error should name the diverging record: {err}"
        );
    }

    /// A corrupted sequence number is rejected by the journal's own
    /// invariants before any replay happens.
    #[test]
    fn tampered_sequence_is_rejected_by_invariants() {
        let spec = crashy_spec();
        let drv = run_journaled_until(&spec, 20);
        let (mut journal, _world) = drv.crash();
        journal.events_mut()[5].seq += 1;
        let err = recover(
            journal,
            spec.config.clone(),
            &spec.submissions,
            RunCounters::new(),
        )
        .err()
        .expect("recovery must fail");
        assert!(err.contains("journal seq"), "{err}");
    }

    /// A tail torn off mid-append by the crash (derived records after
    /// the last input lost) is repaired by re-derivation: the recovered
    /// journal is byte-identical to the untorn one.
    #[test]
    fn torn_tail_is_repaired_by_replay() {
        let spec = crashy_spec();
        let mut full = Driver::with_journal(&spec, RunCounters::new());
        assert!(full.run_to_quiescence());
        let (full_journal, _world) = full.crash();
        let li = full_journal
            .events()
            .iter()
            .rposition(|e| e.payload.is_input())
            .expect("run had input events");
        assert!(
            li + 1 < full_journal.len(),
            "derived records must follow the last input"
        );
        let mut torn = full_journal.clone();
        torn.truncate(li + 1);
        let rec = recover(
            torn,
            spec.config.clone(),
            &spec.submissions,
            RunCounters::new(),
        )
        .unwrap();
        assert!(rec.report.tail_repaired);
        assert_eq!(
            rec.core.journal.as_ref().unwrap().journal(),
            &full_journal,
            "replay must re-derive the torn tail exactly"
        );
    }

    /// Recovery refuses journals that describe a different run.
    #[test]
    fn journal_for_a_different_workload_is_rejected() {
        let spec = crashy_spec();
        let drv = run_journaled_until(&spec, 10);
        let (journal, _world) = drv.crash();
        let mut other = crashy_spec();
        other.submit(Submission::at(
            simple_routine(&[0], Value::OFF),
            Timestamp::from_secs(30),
        ));
        let err = recover(
            journal,
            other.config.clone(),
            &other.submissions,
            RunCounters::new(),
        )
        .err()
        .expect("recovery must fail");
        assert!(err.contains("workload"), "{err}");
    }

    /// Empty and genesis-less journals are rejected up front.
    #[test]
    fn recover_rejects_empty_and_genesis_less_journals() {
        let spec = crashy_spec();
        let err = recover(
            ExecutionJournal::new(),
            spec.config.clone(),
            &spec.submissions,
            RunCounters::new(),
        )
        .err()
        .expect("recovery must fail");
        assert!(err.contains("empty"), "{err}");
        let mut no_genesis = ExecutionJournal::new();
        no_genesis.push(Timestamp::ZERO, EventPayload::DeviceDown { device: d(0) });
        assert!(recover(
            no_genesis,
            spec.config.clone(),
            &spec.submissions,
            RunCounters::new(),
        )
        .is_err());
    }

    /// An irreversible write journaled started but not completed yields
    /// the "physically irreversible" note — in the report and durably in
    /// the journal.
    #[test]
    fn irreversible_inflight_write_yields_recovery_note() {
        let spec = irreversible_spec();
        let mut drv = Driver::with_journal(&spec, RunCounters::new());
        loop {
            let started = journal_has(
                drv.journal().unwrap(),
                |p| matches!(p, EventPayload::WriteStarted { idx, .. } if idx.index() == 1),
            );
            if started {
                break;
            }
            assert!(
                matches!(drv.step(), Step::Event(_)),
                "run ended before the irreversible write dispatched"
            );
        }
        let (journal, _world) = drv.crash();
        let rec = recover(
            journal,
            spec.config.clone(),
            &spec.submissions,
            RunCounters::new(),
        )
        .unwrap();
        let w = rec
            .report
            .inflight
            .iter()
            .find(|w| w.irreversible)
            .expect("irreversible write in flight");
        assert!(w.started);
        assert_eq!(rec.report.notes.len(), 1);
        assert!(rec.report.notes[0].contains("physically irreversible"));
        assert!(
            journal_has(rec.core.journal.as_ref().unwrap().journal(), |p| {
                matches!(p, EventPayload::RecoveryNote { routine: Some(_), message }
                    if message.contains("physically irreversible"))
            }),
            "the note must be durable (a second crash replays past it)"
        );
    }

    /// Redrive onto a fresh world re-dispatches an in-flight idempotent
    /// write exactly once: one `WriteRetrying`, one completion, and the
    /// routine commits.
    #[test]
    fn redrive_completes_idempotent_write_exactly_once() {
        let mut spec = RunSpec::new(plug_home(1), EngineConfig::new(VisibilityModel::ev()));
        spec.submit(Submission::at(
            simple_routine(&[0], Value::ON),
            Timestamp::ZERO,
        ));
        let mut drv = Driver::with_journal(&spec, RunCounters::new());
        while !journal_has(drv.journal().unwrap(), |p| {
            matches!(p, EventPayload::WriteStarted { .. })
        }) {
            assert!(matches!(drv.step(), Step::Event(_)));
        }
        let (journal, _lost_world) = drv.crash();
        let rec = recover(
            journal,
            spec.config.clone(),
            &spec.submissions,
            RunCounters::new(),
        )
        .unwrap();
        assert_eq!(rec.report.inflight.len(), 1);
        assert!(rec.report.inflight[0].started);
        assert!(!rec.report.inflight[0].irreversible);
        let mut rt = HomeRuntime::resume(rec.core, SimBackend::fresh(&spec));
        rt.redrive(&rec.report);
        assert!(rt.run_to_quiescence());
        rt.check_invariants().unwrap();
        let j = rt.journal().unwrap();
        let retries = j
            .events()
            .iter()
            .filter(|e| matches!(e.payload, EventPayload::WriteRetrying { .. }))
            .count();
        let completions = j
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e.payload,
                    EventPayload::WriteCompleted {
                        rollback: false,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(retries, 1, "exactly one re-issue");
        assert_eq!(completions, 1, "exactly one completion — never duplicated");
        assert_eq!(rt.committed_ids().len(), 1);
        assert_eq!(rt.engine().committed_states()[&d(0)], Value::ON);
    }

    /// Redrive never re-fires a started irreversible write: it
    /// synthesizes a failed completion, the routine aborts, and the
    /// already-executed reversible write is rolled back.
    #[test]
    fn redrive_aborts_routine_with_lost_irreversible_write() {
        let spec = irreversible_spec();
        let mut drv = Driver::with_journal(&spec, RunCounters::new());
        loop {
            let started = journal_has(
                drv.journal().unwrap(),
                |p| matches!(p, EventPayload::WriteStarted { idx, .. } if idx.index() == 1),
            );
            if started {
                break;
            }
            assert!(matches!(drv.step(), Step::Event(_)));
        }
        let (journal, _lost_world) = drv.crash();
        let rec = recover(
            journal,
            spec.config.clone(),
            &spec.submissions,
            RunCounters::new(),
        )
        .unwrap();
        let mut rt = HomeRuntime::resume(rec.core, SimBackend::fresh(&spec));
        rt.redrive(&rec.report);
        assert!(rt.run_to_quiescence());
        rt.check_invariants().unwrap();
        assert_eq!(rt.aborted_ids().len(), 1, "the owning routine aborts");
        let j = rt.journal().unwrap();
        assert!(
            !journal_has(j, |p| matches!(p, EventPayload::WriteRetrying { .. })),
            "irreversible writes are never re-issued"
        );
        assert!(
            journal_has(j, |p| matches!(
                p,
                EventPayload::WriteCompleted { rollback: true, .. }
            )),
            "the executed reversible write rolls back"
        );
        assert_eq!(rt.engine().committed_states()[&d(0)], Value::OFF);
    }
}
