//! Resident-fleet service runner: time-sliced open-loop execution with
//! work stealing and journal-backed eviction.
//!
//! [`fleet::run_fleet`](crate::fleet::run_fleet) is a batch driver: a
//! worker picks a home, runs it to quiescence, and only then picks the
//! next. That is the right shape for throughput experiments, but a
//! serving deployment looks different — every home stays *resident* for
//! the whole day, and traffic arrives open-loop, so no single home may
//! monopolize a worker while the rest fall behind.
//!
//! [`run_service`] keeps all of a worker's homes alive at once and
//! advances them in **epoch slices**: each worker owns a contiguous
//! shard of homes and a shard timer wheel ([`EventQueue`]) of
//! `(next-event-time, home)` entries. The worker pops the earliest
//! entry, advances that home only through events due before the next
//! epoch boundary, then re-parks it at its next pending event. A home
//! with an hour-long gap costs nothing during the gap; a home in a
//! burst gets exactly one epoch of attention before its neighbours run.
//!
//! # Work stealing
//!
//! The shard wheels are shared behind cheap mutexes: when a worker's own
//! wheel is empty ([`ServiceConfig::steal`], the default), it sweeps the
//! other shards and steals the earliest parked `(next-event-time, home)`
//! entry, stepping that home through exactly one epoch slice the way the
//! owner would, then re-parking it **into its home shard**. Homes never
//! migrate — only slices do — so a skewed fleet (one burst-heavy "giant
//! factory" home per shard) no longer stalls a whole worker while its
//! siblings idle.
//!
//! # Determinism
//!
//! Stealing cannot perturb results because each home's slice sequence is
//! an intrinsic function of the home alone. A slice pops a home, runs it
//! up to the next absolute epoch boundary **after the home's own
//! earliest pending event**, and re-parks it at its next event: both the
//! boundary and the re-park time come from the home's private event
//! queue, never from the shard wheel's clock. The wheel is purely an
//! advisory scheduler — concurrent pops can clamp a re-parked entry's
//! *wheel* timestamp forward ([`EventQueue`] never schedules in its
//! past), which may reorder slices *between* homes, but homes share no
//! state, so per-home counters, digests and even the total slice count
//! are byte-identical across worker counts, steal on/off and any
//! interleaving (asserted by tests here and by
//! `tests/service_equivalence.rs`).
//!
//! # Journal-backed eviction
//!
//! With [`ServiceConfig::max_resident`] set, every home runs journaled
//! (digest-neutral, see [`crate::journal`]) and the runner bounds how
//! many keep their pooled simulator state hot. Between slices, a parked
//! home that is *cold* — engine quiescent, nothing pending but future
//! workload submissions, no failure plan, absolute arrivals only — may
//! be **evicted**: its controller state collapses to the journal, its
//! world to the per-device states plus the RNG position, and its queue
//! and device storage go back to the thread pool
//! ([`SimBackend::into_world_snapshot`]). When the home's next timer
//! fires, the popping worker (owner or thief) lazily rebuilds it:
//! [`recover`] replays the journal, [`SimBackend::resurrect`] restores
//! the world, and redrive re-schedules the pending submissions — at
//! their original absolute times, so the continuation is event-for-event
//! identical to a never-evicted run. Victims are chosen coldest-first
//! (farthest next-event time) across *every* shard's parked candidates
//! whenever the fleet-wide resident count exceeds the budget — the
//! budget is global, and a worker stealing slices from a busy shard
//! keeps recovering that shard's homes while the cold ones sit parked
//! elsewhere. Homes that are not cold simply stay resident, so the true
//! bound is `max_resident` plus however many homes are warm at the same
//! instant (mid-routine across an epoch boundary, carrying a failure
//! plan, or in a worker's hand): on a calm fleet that is a handful, in
//! a fleet-wide burst it can transiently be most of the fleet.
//!
//! Latency accounting: routine finish latencies are drained after every
//! slice into a constant-memory [`LatencyHistogram`] per worker, merged
//! at the end — the service path can observe p50/p99/p999 over millions
//! of submissions without ever holding the fleet's raw samples in one
//! vector. Eviction preserves the drain cursors: a recovered sink
//! rebuilds the exact latency vector the evicted one had.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

use safehome_core::journal::ExecutionJournal;
use safehome_sim::{EventQueue, SimRng};
use safehome_types::sink::{self, RunCounters, TraceSink};
use safehome_types::{LatencyHistogram, TimeDelta, Timestamp, Value};

use crate::fleet::{home_seed, HomeRun, WorkerStats};
use crate::intra::{
    build_sub_specs, merge_sub_runs, HomePartition, IntraPlanner, SubRun, SubRunLog,
};
use crate::journal::recover;
use crate::runtime::{HomeRuntime, Step};
use crate::sim::{Driver, SimBackend};
use crate::spec::{Arrival, RunSpec};

/// How eviction picks its victim among the cold parked candidates.
/// Never observable in results — any victim order yields byte-identical
/// per-home counters — only in how much replay work recoveries cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Score = expected idle (next-event distance) discounted by the
    /// journal-replay cost a recovery would pay
    /// ([`ExecutionJournal::approx_bytes`] as the proxy): prefer homes
    /// that are both cold *and* cheap to bring back. The default.
    #[default]
    CostAware,
    /// Pure farthest-next-event victim selection — the PR 9 behaviour,
    /// kept for A/B comparison in the eviction bench section.
    ColdestFirst,
}

/// Tuning knobs of the resident service runner. None of them may change
/// per-home results — that is the runner's core contract — only *where*
/// and *with how much resident state* the work happens.
#[derive(Clone)]
pub struct ServiceConfig {
    /// Epoch slice length: slice boundaries are absolute simulated-time
    /// multiples of this.
    pub epoch: TimeDelta,
    /// Idle workers steal slices from other shards' wheels. On by
    /// default; turning it off reproduces the static PR 8 behaviour
    /// (useful for A/B digest checks and steal-benefit measurement).
    pub steal: bool,
    /// Fleet-wide resident-home budget. `Some(n)` journals every home
    /// and evicts cold parked homes whenever more than `n` are resident;
    /// `None` (the default) keeps every home hot and skips journaling.
    pub max_resident: Option<usize>,
    /// Victim selection among cold parked homes (only matters with
    /// `max_resident`).
    pub eviction: EvictionPolicy,
    /// Intra-home parallelism planner. `Some` asks it to partition each
    /// home into conflict clusters ([`crate::intra`]); a home it splits
    /// runs as independent sub-slices — each cluster its own schedulable
    /// unit on the wheel, stealable like any whole-home slice — and is
    /// folded back into one byte-identical [`RunCounters`] when its last
    /// cluster finishes. Homes the planner declines (or that later trip
    /// a fallback, e.g. a stalled sub-run) take the sequential path.
    /// The canonical planner is `safehome_lint::cluster::planner()`,
    /// injected as a callback for the same layering reason as the lint
    /// spec gate.
    pub intra_home: Option<IntraPlanner>,
}

impl std::fmt::Debug for ServiceConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceConfig")
            .field("epoch", &self.epoch)
            .field("steal", &self.steal)
            .field("max_resident", &self.max_resident)
            .field("eviction", &self.eviction)
            .field("intra_home", &self.intra_home.as_ref().map(|_| "<planner>"))
            .finish()
    }
}

impl ServiceConfig {
    /// Stealing on, no eviction, no intra-home splitting — the default
    /// service shape.
    pub fn new(epoch: TimeDelta) -> Self {
        ServiceConfig {
            epoch,
            steal: true,
            max_resident: None,
            eviction: EvictionPolicy::default(),
            intra_home: None,
        }
    }

    /// Builder-style steal toggle.
    pub fn with_steal(mut self, steal: bool) -> Self {
        self.steal = steal;
        self
    }

    /// Builder-style resident budget.
    pub fn with_max_resident(mut self, max_resident: usize) -> Self {
        self.max_resident = Some(max_resident);
        self
    }

    /// Builder-style eviction policy.
    pub fn with_eviction(mut self, eviction: EvictionPolicy) -> Self {
        self.eviction = eviction;
        self
    }

    /// Builder-style intra-home planner.
    pub fn with_intra_home(mut self, planner: IntraPlanner) -> Self {
        self.intra_home = Some(planner);
        self
    }
}

/// Aggregated result of a resident service run.
///
/// The per-home payload is the same [`HomeRun`] the batch fleet driver
/// produces — that is the point: the two paths are comparable field for
/// field, digest for digest.
#[derive(Clone)]
pub struct ServiceResult {
    /// Per-home results, sorted by home index.
    pub homes: Vec<HomeRun>,
    /// Worker threads used.
    pub workers: usize,
    /// Epoch slice length the run was driven at.
    pub epoch: TimeDelta,
    /// Merged latency histogram over every finished routine in the
    /// fleet (same samples as the per-home `latencies_ms` vectors).
    pub latency: LatencyHistogram,
    /// Total `(pop, advance, re-park)` slices executed. Deterministic —
    /// slice boundaries are absolute simulated-time multiples of the
    /// epoch derived from each home's own event queue, so the count
    /// depends only on the fleet and the epoch, never on the worker
    /// count, stealing or eviction.
    pub slices: u64,
    /// Per-worker scheduling stats (slices run, steals, homes finished).
    /// Scheduling-dependent — informational only, never compare across
    /// runs.
    pub worker_stats: Vec<WorkerStats>,
    /// Cold homes parked behind their journal (0 without `max_resident`).
    pub evictions: u64,
    /// Evicted homes rebuilt by journal replay when their next timer
    /// fired.
    pub recoveries: u64,
    /// Most homes ever simultaneously resident (holding pooled simulator
    /// state). Without eviction this is simply the fleet size.
    pub peak_resident_homes: usize,
    /// Approximate heap bytes one *resident* home pins (largest observed
    /// sample: event-queue capacity + device slots).
    pub approx_resident_home_bytes: usize,
    /// Approximate heap bytes one *evicted* home retains (largest
    /// observed sample: journal + device states + RNG). 0 when nothing
    /// was evicted.
    pub approx_evicted_home_bytes: usize,
    /// Homes the intra-home planner split and the runner merged back
    /// from per-cluster sub-runs (0 without a planner).
    pub intra_homes: u64,
    /// Split homes whose merge declined (a sub-run stalled) and that
    /// were re-run sequentially. Should be 0 in practice — the planner's
    /// gate filters what the merge cannot handle — so benches hard-gate
    /// on it.
    pub intra_fallbacks: u64,
}

impl ServiceResult {
    /// Total routines submitted across the fleet (the offered load).
    pub fn offered(&self) -> u64 {
        self.homes.iter().map(|h| h.counters.submitted).sum()
    }

    /// Total committed routines across the fleet.
    pub fn committed(&self) -> u64 {
        self.homes.iter().map(|h| h.counters.committed).sum()
    }

    /// Total aborted routines across the fleet.
    pub fn aborted(&self) -> u64 {
        self.homes.iter().map(|h| h.counters.aborted).sum()
    }

    /// Routines that reached a terminal outcome (committed or aborted).
    pub fn finished(&self) -> u64 {
        self.committed() + self.aborted()
    }

    /// `true` when every home reached quiescence.
    pub fn all_completed(&self) -> bool {
        self.homes.iter().all(|h| h.completed)
    }

    /// Order-sensitive digest over the per-home digests; comparable
    /// directly against [`FleetResult::digest`](crate::FleetResult::digest)
    /// for the same fleet.
    pub fn digest(&self) -> u64 {
        self.homes.iter().fold(sink::DIGEST_SEED, |acc, h| {
            sink::fold_digest(acc, h.counters.digest)
        })
    }

    /// Total steals across workers (scheduling-dependent).
    pub fn steals(&self) -> u64 {
        self.worker_stats.iter().map(|w| w.steals).sum()
    }
}

/// Runs `homes` resident homes across `workers` threads in epoch slices
/// of `epoch` simulated time, with stealing on and eviction off (the
/// [`ServiceConfig::new`] defaults — see [`run_service_with`]).
///
/// `make_spec(home, seed)` builds each home's spec from its derived
/// seed ([`home_seed`]), exactly as for the batch fleet driver; equal
/// inputs give per-home results byte-identical to
/// [`run_fleet`](crate::fleet::run_fleet).
pub fn run_service<F>(
    homes: usize,
    workers: usize,
    fleet_seed: u64,
    epoch: TimeDelta,
    make_spec: F,
) -> ServiceResult
where
    F: Fn(usize, u64) -> RunSpec + Sync,
{
    run_service_with(
        homes,
        workers,
        fleet_seed,
        ServiceConfig::new(epoch),
        make_spec,
    )
}

/// One schedulable unit: a whole home, or one conflict cluster of a
/// home the intra-home planner split. Units are what the shard wheels
/// park and pop — a split home's clusters are stealable independently,
/// which is the whole point: a heavy home stops being one indivisible
/// lump of work.
#[derive(Debug, Clone, Copy)]
struct UnitMeta {
    home: usize,
    /// `None`: the whole home. `Some(c)`: cluster `c` of its partition.
    cluster: Option<usize>,
}

/// One unit's slot: its execution state plus the per-home latency drain
/// cursor, which survives eviction (the recovered sink rebuilds the
/// exact latency vector the evicted one had).
struct HomeSlot<'a> {
    cell: Cell<'a>,
    drained: usize,
    /// Statically evictable: eviction enabled, no failure plan (hence no
    /// probe loops or injections) and absolute arrivals only (replay's
    /// pending-submit order is then provably the original schedule
    /// order). The dynamic half — quiescent, only future submissions
    /// pending — is re-checked at every park. Always `false` for
    /// cluster units: a split home stays hot until its merge.
    evictable_spec: bool,
}

enum Cell<'a> {
    /// Transient placeholder during construction and state swaps.
    Vacant,
    // Boxed: the live runtime dominates the enum (~1.5 KiB vs the
    // ~400 B terminal variants); the indirection keeps the per-home
    // slot vector small once homes finish or evict.
    Live(Box<Driver<'a, RunCounters>>),
    /// A cluster sub-driver of a split home, recording its sink-call
    /// stream for the merge.
    LiveSub(Box<Driver<'a, SubRunLog>>),
    Evicted(EvictedHome),
    /// A finished cluster sub-run, waiting for its siblings.
    FinishedSub(Box<SubRun>),
    Finished {
        // Boxed for the same reason as `Live`: terminal counters carry
        // the full latency vector, dwarfing `Vacant`/`Evicted`.
        counters: Box<RunCounters>,
        completed: bool,
    },
}

/// Everything an evicted home is: the durable journal (the whole
/// controller) plus the compact world snapshot that survives a
/// controller restart (device states, RNG position).
struct EvictedHome {
    journal: ExecutionJournal,
    device_states: Vec<Value>,
    rng: SimRng,
}

/// One shard's shared scheduling state.
#[derive(Default)]
struct ShardCore {
    /// Timer wheel of parked units. The payload carries the *true* park
    /// time: concurrent pops may clamp the wheel timestamp forward, and
    /// the candidate bookkeeping below must match the original.
    wheel: EventQueue<(usize, Timestamp)>,
    /// Parked units currently satisfying the full evictability
    /// condition, keyed by eviction score — `last` is the best victim.
    /// Kept exactly in sync with `scores` below: every mutation goes
    /// through [`Self::park_candidate`] / [`Self::unpark_candidate`],
    /// which compact a unit's previous entry on re-park, so a unit has
    /// at most one live entry and an entry can never outlive a pop or
    /// an eviction race (entries used to linger when an evicted home's
    /// concurrent re-park re-inserted it; consumers still re-validate
    /// under the slot lock before acting, as the wheel pop itself can
    /// race the claim).
    parked: BTreeSet<(u64, usize)>,
    /// Side index: unit → its current score key in `parked`. The single
    /// source of truth for membership, enabling removal by unit alone.
    scores: BTreeMap<usize, u64>,
}

impl ShardCore {
    /// Registers (or refreshes) a parked eviction candidate, compacting
    /// any stale entry the unit left behind.
    fn park_candidate(&mut self, unit: usize, score: u64) {
        if let Some(old) = self.scores.insert(unit, score) {
            self.parked.remove(&(old, unit));
        }
        self.parked.insert((score, unit));
    }

    /// Withdraws a unit's candidate entry (pop, steal or eviction
    /// claim). `false` when it had none — the usual race outcome.
    fn unpark_candidate(&mut self, unit: usize) -> bool {
        match self.scores.remove(&unit) {
            Some(score) => self.parked.remove(&(score, unit)),
            None => false,
        }
    }

    /// The highest-scored candidate, if any.
    fn best_victim(&self) -> Option<(u64, usize)> {
        self.parked.last().copied()
    }
}

/// Shared run context: everything the workers touch. Lock order: a
/// worker holds at most one slot lock and at most one shard lock, and
/// only ever acquires a shard lock *while holding* a slot lock (the
/// re-park path) — never the reverse — so there is no cycle.
struct ServiceCtx<'a> {
    specs: &'a [RunSpec],
    /// Per home: the cluster sub-specs when the planner split it
    /// (empty otherwise).
    sub_specs: &'a [Vec<RunSpec>],
    /// Per home: the planner's partition, `None` for sequential homes.
    partitions: &'a [Option<HomePartition>],
    /// All schedulable units, grouped by home (`home_units[h]` indexes
    /// a contiguous range of `units`/`slots`).
    units: Vec<UnitMeta>,
    home_units: Vec<Range<usize>>,
    /// Per home: unfinished cluster units; the worker that takes it to
    /// zero performs the merge. Unused for sequential homes.
    pending_units: Vec<AtomicUsize>,
    shards: Vec<Mutex<ShardCore>>,
    slots: Vec<Mutex<HomeSlot<'a>>>,
    epoch_ms: u64,
    steal: bool,
    max_resident: Option<usize>,
    eviction: EvictionPolicy,
    /// Unfinished units; workers exit when it hits zero.
    live: AtomicUsize,
    resident: AtomicUsize,
    peak_resident: AtomicUsize,
    evictions: AtomicU64,
    recoveries: AtomicU64,
    intra_homes: AtomicU64,
    intra_fallbacks: AtomicU64,
    resident_bytes: AtomicUsize,
    evicted_bytes: AtomicUsize,
    barrier: Barrier,
}

impl<'a> ServiceCtx<'a> {
    fn note_resident(&self) {
        let now = self.resident.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak_resident.fetch_max(now, Ordering::SeqCst);
    }

    /// The spec a unit executes: the home's own, or its cluster's
    /// projection.
    fn unit_spec(&self, unit: usize) -> &'a RunSpec {
        let meta = self.units[unit];
        match meta.cluster {
            None => &self.specs[meta.home],
            Some(c) => &self.sub_specs[meta.home][c],
        }
    }

    /// The eviction score of a parked unit: higher = better victim.
    fn eviction_score(&self, next: Timestamp, replay_cost_bytes: usize) -> u64 {
        match self.eviction {
            EvictionPolicy::ColdestFirst => next.as_millis(),
            // Idle distance discounted by replay cost: 4 journal bytes
            // cost one millisecond of coldness, so between two equally
            // cold homes the cheaper replay goes first, and a hot-ish
            // home with a tiny journal can beat a cold one with an
            // expensive history.
            EvictionPolicy::CostAware => next
                .as_millis()
                .saturating_sub(replay_cost_bytes as u64 / 4),
        }
    }
}

/// [`run_service`] with explicit stealing/eviction knobs.
pub fn run_service_with<F>(
    homes: usize,
    workers: usize,
    fleet_seed: u64,
    config: ServiceConfig,
    make_spec: F,
) -> ServiceResult
where
    F: Fn(usize, u64) -> RunSpec + Sync,
{
    let workers = workers.clamp(1, homes.max(1));
    let make_spec = &make_spec;
    let seeds: Vec<u64> = (0..homes)
        .map(|home| home_seed(fleet_seed, home as u64))
        .collect();

    // Phase 1 — build the specs, in parallel over the same contiguous
    // near-equal split the shards use. Spec construction is pure in
    // (home, seed), so the split is a throughput detail.
    let bounds: Vec<(usize, usize)> = (0..workers)
        .map(|w| (w * homes / workers, (w + 1) * homes / workers))
        .collect();
    let specs: Vec<RunSpec> = if workers == 1 {
        (0..homes)
            .map(|home| make_spec(home, seeds[home]))
            .collect()
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = bounds
                .iter()
                .map(|&(lo, hi)| {
                    let seeds = &seeds;
                    scope.spawn(move || {
                        (lo..hi)
                            .map(|home| make_spec(home, seeds[home]))
                            .collect::<Vec<RunSpec>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("service spec builder panicked"))
                .collect()
        })
    };

    // Phase 1.5 — intra-home planning: ask the planner (when installed)
    // to partition each home into conflict clusters, and project the
    // split homes' specs. Planning is pure in the spec, so this changes
    // no results — only the unit granularity below.
    let partitions: Vec<Option<HomePartition>> = match &config.intra_home {
        None => vec![None; homes],
        Some(planner) => specs
            .iter()
            .map(|spec| planner(spec).filter(HomePartition::is_split))
            .collect(),
    };
    let sub_specs: Vec<Vec<RunSpec>> = specs
        .iter()
        .zip(&partitions)
        .map(|(spec, p)| match p {
            Some(p) => build_sub_specs(spec, p),
            None => Vec::new(),
        })
        .collect();
    let mut units = Vec::with_capacity(homes);
    let mut home_units = Vec::with_capacity(homes);
    for (home, p) in partitions.iter().enumerate() {
        let start = units.len();
        match p {
            Some(p) => units.extend((0..p.clusters.len()).map(|c| UnitMeta {
                home,
                cluster: Some(c),
            })),
            None => units.push(UnitMeta {
                home,
                cluster: None,
            }),
        }
        home_units.push(start..units.len());
    }

    let ctx = ServiceCtx {
        slots: units
            .iter()
            .map(|meta| {
                let spec = &specs[meta.home];
                Mutex::new(HomeSlot {
                    cell: Cell::Vacant,
                    drained: 0,
                    evictable_spec: meta.cluster.is_none()
                        && config.max_resident.is_some()
                        && spec.failures.is_empty()
                        && spec
                            .submissions
                            .iter()
                            .all(|s| matches!(s.arrival, Arrival::At(_))),
                })
            })
            .collect(),
        pending_units: home_units
            .iter()
            .map(|r| AtomicUsize::new(r.len()))
            .collect(),
        live: AtomicUsize::new(units.len()),
        units,
        home_units,
        specs: &specs,
        sub_specs: &sub_specs,
        partitions: &partitions,
        shards: (0..workers)
            .map(|_| Mutex::new(ShardCore::default()))
            .collect(),
        epoch_ms: config.epoch.as_millis().max(1),
        steal: config.steal,
        max_resident: config.max_resident,
        eviction: config.eviction,
        resident: AtomicUsize::new(0),
        peak_resident: AtomicUsize::new(0),
        evictions: AtomicU64::new(0),
        recoveries: AtomicU64::new(0),
        intra_homes: AtomicU64::new(0),
        intra_fallbacks: AtomicU64::new(0),
        resident_bytes: AtomicUsize::new(0),
        evicted_bytes: AtomicUsize::new(0),
        barrier: Barrier::new(workers),
    };

    // Phase 2 — resident execution.
    let outputs: Vec<(LatencyHistogram, WorkerStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let ctx = &ctx;
                let bounds = &bounds;
                scope.spawn(move || service_worker(ctx, w, bounds[w]))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("service worker panicked"))
            .collect()
    });

    let mut result = ServiceResult {
        homes: Vec::with_capacity(homes),
        workers,
        epoch: config.epoch,
        latency: LatencyHistogram::new(),
        slices: 0,
        worker_stats: Vec::with_capacity(workers),
        evictions: ctx.evictions.load(Ordering::SeqCst),
        recoveries: ctx.recoveries.load(Ordering::SeqCst),
        peak_resident_homes: ctx.peak_resident.load(Ordering::SeqCst),
        approx_resident_home_bytes: ctx.resident_bytes.load(Ordering::SeqCst),
        approx_evicted_home_bytes: ctx.evicted_bytes.load(Ordering::SeqCst),
        intra_homes: ctx.intra_homes.load(Ordering::SeqCst),
        intra_fallbacks: ctx.intra_fallbacks.load(Ordering::SeqCst),
    };
    for (hist, stats) in outputs {
        result.latency.merge(&hist);
        result.slices += stats.slices_run;
        result.worker_stats.push(stats);
    }
    // A home's terminal counters live in its *primary* unit slot (its
    // only unit, or cluster 0 — where the merging worker parked them).
    let home_units = ctx.home_units.clone();
    let mut slots: Vec<Option<HomeSlot>> = ctx
        .slots
        .into_iter()
        .map(|s| Some(s.into_inner().expect("no worker holds a slot now")))
        .collect();
    for (home, range) in home_units.iter().enumerate() {
        let slot = slots[range.start].take().expect("primary slot present");
        match slot.cell {
            Cell::Finished {
                counters,
                completed,
            } => result.homes.push(HomeRun {
                home,
                seed: seeds[home],
                completed,
                counters: *counters,
            }),
            _ => unreachable!("home {home} did not reach a terminal state"),
        }
    }
    result
}

/// One worker: builds its own shard's homes, then slices — own wheel
/// first, stealing from the other shards when it runs dry.
fn service_worker<'a>(
    ctx: &ServiceCtx<'a>,
    w: usize,
    (lo, hi): (usize, usize),
) -> (LatencyHistogram, WorkerStats) {
    let mut stats = WorkerStats::default();
    let mut hist = LatencyHistogram::new();

    for home in lo..hi {
        for unit in ctx.home_units[home].clone() {
            let meta = ctx.units[unit];
            let spec = ctx.unit_spec(unit);
            if meta.cluster.is_some() {
                // A cluster sub-driver: traced (funnel log + pop-segmented
                // sink) so the finishing worker can merge the home back
                // byte-identically. Never journaled, never evictable —
                // split homes stay hot until their merge.
                let d = Driver::with_sink_traced(spec, SubRunLog::new());
                let next = d.backend().next_event_at().unwrap_or(Timestamp::ZERO);
                ctx.slots[unit].lock().expect("slot").cell = Cell::LiveSub(Box::new(d));
                ctx.note_resident();
                ctx.shards[w]
                    .lock()
                    .expect("shard")
                    .wheel
                    .schedule(next, (unit, next));
                continue;
            }
            // Eviction needs the journal as the durable half of the home;
            // journaling is digest-neutral, so the knob never changes
            // results (pinned by `journaling_is_digest_neutral`).
            let d = if ctx.max_resident.is_some() {
                Driver::with_journal(spec, RunCounters::new())
            } else {
                Driver::with_sink(spec, RunCounters::new())
            };
            if home == lo {
                ctx.resident_bytes
                    .fetch_max(d.backend().approx_resident_bytes(), Ordering::SeqCst);
            }
            let next = d.backend().next_event_at().unwrap_or(Timestamp::ZERO);
            let replay_cost = d.journal().map_or(0, ExecutionJournal::approx_bytes);
            let evictable = {
                let mut slot = ctx.slots[unit].lock().expect("slot");
                let evictable = slot.evictable_spec
                    && d.engine().quiescent()
                    && d.backend().only_submits_pending();
                slot.cell = Cell::Live(Box::new(d));
                evictable
            };
            ctx.note_resident();
            {
                let mut sc = ctx.shards[w].lock().expect("shard");
                sc.wheel.schedule(next, (unit, next));
                if evictable {
                    sc.park_candidate(unit, ctx.eviction_score(next, replay_cost));
                }
            }
            // Evict-at-birth keeps even the construction phase inside the
            // budget: a fresh all-`At` home is already cold (nothing
            // submitted yet), so it can park behind its genesis journal.
            evict_over_budget(ctx, w);
        }
    }

    // All shards populated before anyone may steal from them.
    ctx.barrier.wait();

    loop {
        let popped = pop_shard(ctx, w).or_else(|| {
            if !ctx.steal {
                return None;
            }
            (w + 1..ctx.shards.len())
                .chain(0..w)
                .find_map(|victim| pop_shard(ctx, victim))
                .inspect(|_| stats.steals += 1)
        });
        match popped {
            Some((shard, home)) => {
                run_slice(ctx, shard, home, &mut stats, &mut hist);
                evict_over_budget(ctx, shard);
            }
            None => {
                if ctx.live.load(Ordering::Acquire) == 0 {
                    break;
                }
                // Every remaining home is mid-slice on another worker;
                // its re-park (or finish) is imminent.
                std::thread::yield_now();
            }
        }
    }
    (hist, stats)
}

/// Pops the earliest parked unit from shard `s`, maintaining the
/// eviction-candidate set. Returns `(shard, unit)`.
fn pop_shard(ctx: &ServiceCtx<'_>, s: usize) -> Option<(usize, usize)> {
    let mut sc = ctx.shards[s].lock().expect("shard");
    let (_, (unit, _next)) = sc.wheel.pop()?;
    sc.unpark_candidate(unit);
    Some((s, unit))
}

/// Advances one epoch slice: runs `d` through every event strictly
/// before the next absolute epoch boundary after its own earliest
/// pending event. Never derive that boundary from the wheel's popped
/// timestamp: concurrent pops may have clamped it forward, and slice
/// structure must stay a property of the unit and the epoch grid alone.
///
/// Returns `Some(next_event)` when the unit should re-park, `None` when
/// it reached a terminal state. (A unit that could already report
/// quiescence but still holds an immaterial probe event parks at most
/// once more — its next slice's first step resolves to done without
/// popping the probe.)
fn advance_slice<S: TraceSink>(d: &mut Driver<'_, S>, epoch_ms: u64) -> Option<Timestamp> {
    let end = match d.backend().next_event_at() {
        Some(next) => Timestamp::from_millis((next.as_millis() / epoch_ms + 1) * epoch_ms),
        None => Timestamp::ZERO, // first step observes quiescence
    };
    loop {
        if d.is_done() {
            return None;
        }
        match d.backend().next_event_at() {
            Some(next) if next >= end => return Some(next),
            _ => match d.step() {
                Step::Event(_) | Step::Idle => {}
                Step::Quiescent | Step::Stalled => return None,
            },
        }
    }
}

/// Runs one epoch slice of `unit`, recovering it first if it was
/// evicted. `shard` is the unit's owning shard (where it re-parks).
fn run_slice<'a>(
    ctx: &ServiceCtx<'a>,
    shard: usize,
    unit: usize,
    stats: &mut WorkerStats,
    hist: &mut LatencyHistogram,
) {
    let meta = ctx.units[unit];
    if meta.cluster.is_some() {
        return run_sub_slice(ctx, shard, unit, stats, hist);
    }
    let mut slot = ctx.slots[unit].lock().expect("slot");
    let slot = &mut *slot;
    let evictable_spec = slot.evictable_spec;

    if matches!(slot.cell, Cell::Evicted(_)) {
        let Cell::Evicted(ev) = std::mem::replace(&mut slot.cell, Cell::Vacant) else {
            unreachable!()
        };
        slot.cell = Cell::Live(Box::new(recover_home(&ctx.specs[meta.home], ev)));
        ctx.recoveries.fetch_add(1, Ordering::SeqCst);
        ctx.note_resident();
    }
    stats.slices_run += 1;

    let Cell::Live(d) = &mut slot.cell else {
        unreachable!("popped unit {unit} is neither live nor evicted")
    };
    if let Some(next) = advance_slice(d, ctx.epoch_ms) {
        let evictable =
            evictable_spec && d.engine().quiescent() && d.backend().only_submits_pending();
        let replay_cost = d.journal().map_or(0, ExecutionJournal::approx_bytes);
        let mut sc = ctx.shards[shard].lock().expect("shard");
        sc.wheel.schedule(next, (unit, next));
        if evictable {
            sc.park_candidate(unit, ctx.eviction_score(next, replay_cost));
        }
    }

    if d.is_done() {
        let Cell::Live(d) = std::mem::replace(&mut slot.cell, Cell::Vacant) else {
            unreachable!()
        };
        let (counters, _, completed) = d.into_output();
        // Catch any samples recorded after the home's last drain.
        for &ms in &counters.latencies_ms[slot.drained..] {
            hist.record(ms);
        }
        slot.drained = counters.latencies_ms.len();
        slot.cell = Cell::Finished {
            counters: Box::new(counters),
            completed,
        };
        ctx.resident.fetch_sub(1, Ordering::SeqCst);
        stats.homes_run += 1;
        ctx.live.fetch_sub(1, Ordering::Release);
    } else {
        // Progressive latency drain: only the routines that finished in
        // this slice, so worker memory stays flat over the horizon.
        let finished = &d.sink().latencies_ms;
        for &ms in &finished[slot.drained..] {
            hist.record(ms);
        }
        slot.drained = finished.len();
    }
}

/// Runs one epoch slice of a cluster sub-unit: same slice discipline as
/// a whole home, recording sink, never evicted. The worker that
/// finishes the home's last cluster performs the merge — after this
/// unit's slot lock is released, since the merge relocks every sibling
/// slot (including, possibly, this one).
fn run_sub_slice<'a>(
    ctx: &ServiceCtx<'a>,
    shard: usize,
    unit: usize,
    stats: &mut WorkerStats,
    hist: &mut LatencyHistogram,
) {
    stats.slices_run += 1;
    let finished = {
        let mut slot = ctx.slots[unit].lock().expect("slot");
        let Cell::LiveSub(d) = &mut slot.cell else {
            unreachable!("popped cluster unit {unit} is not a live sub-driver")
        };
        match advance_slice(d, ctx.epoch_ms) {
            Some(next) => {
                ctx.shards[shard]
                    .lock()
                    .expect("shard")
                    .wheel
                    .schedule(next, (unit, next));
                false
            }
            None => {
                let Cell::LiveSub(mut d) = std::mem::replace(&mut slot.cell, Cell::Vacant) else {
                    unreachable!()
                };
                let funnel = d.backend_mut().take_funnel_log();
                let (log, _, completed) = d.into_output();
                slot.cell = Cell::FinishedSub(Box::new(SubRun {
                    log,
                    funnel,
                    completed,
                }));
                ctx.resident.fetch_sub(1, Ordering::SeqCst);
                true
            }
        }
    };
    if finished {
        let home = ctx.units[unit].home;
        let remaining = ctx.pending_units[home].fetch_sub(1, Ordering::SeqCst) - 1;
        if remaining == 0 {
            merge_home(ctx, home, stats, hist);
        }
        ctx.live.fetch_sub(1, Ordering::Release);
    }
}

/// Folds a split home's finished sub-runs back into the one
/// [`RunCounters`] the sequential path would have produced, parking it
/// in the home's primary unit slot. Runs on whichever worker finished
/// the last cluster. If the merge declines (a sub-run stalled — the
/// planner's gate makes that exceptional), the home is re-run
/// sequentially from scratch: slower, never wrong.
fn merge_home<'a>(
    ctx: &ServiceCtx<'a>,
    home: usize,
    stats: &mut WorkerStats,
    hist: &mut LatencyHistogram,
) {
    let range = ctx.home_units[home].clone();
    let mut subs = Vec::with_capacity(range.len());
    for u in range.clone() {
        let mut slot = ctx.slots[u].lock().expect("slot");
        let Cell::FinishedSub(sr) = std::mem::replace(&mut slot.cell, Cell::Vacant) else {
            unreachable!("sibling unit {u} of merged home {home} is not a finished sub-run")
        };
        subs.push(*sr);
    }
    let spec = &ctx.specs[home];
    let partition = ctx.partitions[home]
        .as_ref()
        .expect("merged home has a partition");
    let (counters, completed) = match merge_sub_runs(spec, partition, subs) {
        Some(counters) => {
            ctx.intra_homes.fetch_add(1, Ordering::SeqCst);
            (counters, true)
        }
        None => {
            ctx.intra_fallbacks.fetch_add(1, Ordering::SeqCst);
            let mut d = Driver::with_sink(spec, RunCounters::new());
            let completed = d.run_to_quiescence();
            let (counters, _, _) = d.into_output();
            (counters, completed)
        }
    };
    // Split homes drain latencies only here, all at once: sub-runs
    // record no samples (their sink is the call log), and the merged
    // counters rebuild the exact sequential latency vector.
    for &ms in &counters.latencies_ms {
        hist.record(ms);
    }
    let mut slot = ctx.slots[range.start].lock().expect("slot");
    slot.drained = counters.latencies_ms.len();
    slot.cell = Cell::Finished {
        counters: Box::new(counters),
        completed,
    };
    stats.homes_run += 1;
}

/// Evicts best-victim-first (per [`EvictionPolicy`]) while the
/// fleet-wide resident count exceeds the budget. The budget is global,
/// so the victim search sweeps *every* shard's parked candidates
/// (starting at `shard`, the caller's, to spread lock pressure) — a
/// worker stealing slices from a busy shard keeps recovering that
/// shard's homes while the cold ones sit parked elsewhere. Candidates
/// are re-validated under the slot lock: a wheel pop can race the
/// claim.
fn evict_over_budget(ctx: &ServiceCtx<'_>, shard: usize) {
    let Some(max) = ctx.max_resident else { return };
    let shards = ctx.shards.len();
    loop {
        if ctx.resident.load(Ordering::SeqCst) <= max {
            return;
        }
        // Globally best candidate: peek each shard's top-scored parked
        // entry, then take the overall best.
        let mut best: Option<(u64, usize, usize)> = None;
        for i in 0..shards {
            let s = (shard + i) % shards;
            let sc = ctx.shards[s].lock().expect("shard");
            if let Some((score, unit)) = sc.best_victim() {
                if best.is_none_or(|(b, _, _)| score > b) {
                    best = Some((score, unit, s));
                }
            }
        }
        let Some((_, unit, s)) = best else { return };
        // Claim it; a pop or re-park may have raced the peek — re-scan.
        if !ctx.shards[s].lock().expect("shard").unpark_candidate(unit) {
            continue;
        }
        let mut slot = ctx.slots[unit].lock().expect("slot");
        let still_cold = match &slot.cell {
            Cell::Live(d) => {
                !d.is_done() && d.engine().quiescent() && d.backend().only_submits_pending()
            }
            _ => false,
        };
        if !still_cold {
            continue;
        }
        let Cell::Live(d) = std::mem::replace(&mut slot.cell, Cell::Vacant) else {
            unreachable!()
        };
        let (journal, backend) = d.crash();
        ctx.resident_bytes
            .fetch_max(backend.approx_resident_bytes(), Ordering::SeqCst);
        let (device_states, rng) = backend.into_world_snapshot();
        ctx.evicted_bytes.fetch_max(
            journal.approx_bytes()
                + device_states.len() * std::mem::size_of::<Value>()
                + std::mem::size_of::<SimRng>(),
            Ordering::SeqCst,
        );
        slot.cell = Cell::Evicted(EvictedHome {
            journal,
            device_states,
            rng,
        });
        ctx.resident.fetch_sub(1, Ordering::SeqCst);
        ctx.evictions.fetch_add(1, Ordering::SeqCst);
    }
}

/// Rebuilds an evicted home: journal replay reconstructs the controller
/// (engine, tables, sink — including the latency vector the drain
/// cursor indexes), the world snapshot restores devices and RNG, and
/// redrive re-schedules the pending submissions at their original
/// absolute times (all at or after the journal tip, so no clamping —
/// the continuation is event-for-event that of a never-evicted run).
fn recover_home<'a>(spec: &'a RunSpec, ev: EvictedHome) -> Driver<'a, RunCounters> {
    let recovered = recover(
        ev.journal,
        spec.config.clone(),
        &spec.submissions,
        RunCounters::new(),
    )
    .expect("an eviction-time journal always replays");
    debug_assert!(
        recovered.report.inflight.is_empty() && recovered.report.pending_timers.is_empty(),
        "evicted homes are quiescent: nothing in flight, no armed timers"
    );
    let backend = SimBackend::resurrect(spec, &ev.device_states, ev.rng);
    let mut d = HomeRuntime::resume(recovered.core, backend);
    d.redrive(&recovered.report);
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::run_fleet;
    use crate::spec::Submission;
    use safehome_core::{EngineConfig, VisibilityModel};
    use safehome_devices::catalog::plug_home;
    use safehome_devices::FailurePlan;
    use safehome_sim::SimRng;
    use safehome_types::{DeviceId, Routine, Value};

    /// An open-loop-shaped home: arrivals spread over a long, sparse
    /// horizon (exercising the wheel's outer levels), and a seeded
    /// minority of homes carry a fail-stop plan (exercising probe
    /// events and aborts under slicing, and pinning such homes resident
    /// under eviction).
    fn service_shaped_home(_: usize, seed: u64) -> RunSpec {
        let mut spec = evictable_home(0, seed);
        let mut rng = SimRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
        if rng.next_u64().is_multiple_of(4) {
            spec.failures =
                FailurePlan::random_fail_stop(4, 0.3, Timestamp::from_millis(3_600_000), &mut rng);
        }
        spec
    }

    /// The failure-free variant: every home satisfies the static half of
    /// the evictability condition.
    fn evictable_home(_: usize, seed: u64) -> RunSpec {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut spec =
            RunSpec::new(plug_home(4), EngineConfig::new(VisibilityModel::ev())).with_seed(seed);
        let n = 3 + (rng.next_u64() % 4) as usize;
        for i in 0..n {
            let mut b = Routine::builder(format!("r{i}"));
            for j in 0..2u32 {
                b = b.set(
                    DeviceId((i as u32 + j) % 4),
                    Value::ON,
                    TimeDelta::from_millis(50),
                );
            }
            // Sparse arrivals over ~2 hours: most epochs are empty for
            // most homes, the resident runner's natural habitat.
            spec.submit(Submission::at(
                b.build(),
                Timestamp::from_millis(rng.next_u64() % (2 * 3_600_000)),
            ));
        }
        // Burn the draw the failure branch of `service_shaped_home` once
        // consumed, keeping legacy schedules unchanged.
        let _ = rng.next_u64();
        spec
    }

    /// A decomposable "factory" home: independent 3-device zones, fixed
    /// latency, no failures, absolute arrivals — everything the
    /// intra-home gate wants. Routines never cross zones.
    fn zoned_home(zones: usize, seed: u64) -> RunSpec {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut spec = RunSpec::new(
            plug_home(zones * 3),
            EngineConfig::new(VisibilityModel::ev()),
        )
        .with_seed(seed);
        spec.latency = safehome_devices::LatencyModel::Fixed(TimeDelta::from_millis(25));
        for z in 0..zones {
            let n = 2 + (rng.next_u64() % 3) as usize;
            for i in 0..n {
                let base = (z * 3) as u32;
                let r = Routine::builder(format!("z{z}r{i}"))
                    .set(
                        DeviceId(base + (i as u32) % 3),
                        Value::ON,
                        TimeDelta::from_millis(40 + rng.next_u64() % 100),
                    )
                    .set(
                        DeviceId(base + (i as u32 + 1) % 3),
                        Value::OFF,
                        TimeDelta::from_millis(30),
                    )
                    .build();
                spec.submit(Submission::at(
                    r,
                    Timestamp::from_millis(rng.next_u64() % 600_000),
                ));
            }
        }
        spec
    }

    /// A hand-rolled planner with the same rule as `safehome-lint`'s
    /// cluster analysis (which lives above this crate): union on shared
    /// footprint device or `After` edge, gated on the harness
    /// preconditions.
    fn test_planner() -> crate::intra::IntraPlanner {
        std::sync::Arc::new(|spec: &RunSpec| {
            if !crate::intra::spec_decomposable(spec) {
                return None;
            }
            let n = spec.submissions.len();
            let mut root: Vec<usize> = (0..n).collect();
            fn find(root: &mut [usize], mut x: usize) -> usize {
                while root[x] != x {
                    root[x] = root[root[x]];
                    x = root[x];
                }
                x
            }
            let mut owner: std::collections::BTreeMap<DeviceId, usize> = Default::default();
            for i in 0..n {
                for d in spec.submissions[i].routine.devices() {
                    let j = *owner.entry(d).or_insert(i);
                    let (a, b) = (find(&mut root, i), find(&mut root, j));
                    root[a.max(b)] = a.min(b);
                }
                if let Arrival::After { index, .. } = spec.submissions[i].arrival {
                    let (a, b) = (find(&mut root, i), find(&mut root, index));
                    root[a.max(b)] = a.min(b);
                }
            }
            let mut clusters: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
            for i in 0..n {
                let r = find(&mut root, i);
                clusters.entry(r).or_default().push(i);
            }
            let p = crate::intra::HomePartition {
                clusters: clusters.into_values().collect(),
            };
            p.is_split().then_some(p)
        })
    }

    /// Half the fleet decomposable factory homes, half the jittery
    /// service mix the planner must decline.
    fn mixed_home(home: usize, seed: u64) -> RunSpec {
        if home.is_multiple_of(2) {
            zoned_home(3 + home % 3, seed)
        } else {
            service_shaped_home(home, seed)
        }
    }

    #[test]
    fn intra_home_splitting_is_digest_neutral() {
        let base = run_service_with(
            8,
            1,
            0x147,
            ServiceConfig::new(TimeDelta::from_secs(10)),
            mixed_home,
        );
        assert_eq!(base.intra_homes, 0, "no planner, no splits");
        for workers in [1, 2, 4] {
            for steal in [false, true] {
                let intra = run_service_with(
                    8,
                    workers,
                    0x147,
                    ServiceConfig::new(TimeDelta::from_secs(10))
                        .with_steal(steal)
                        .with_intra_home(test_planner()),
                    mixed_home,
                );
                assert_eq!(
                    base.homes, intra.homes,
                    "sub-slice execution must be invisible in results \
                     ({workers} workers, steal={steal})"
                );
                assert_eq!(base.digest(), intra.digest());
                assert_eq!(intra.intra_homes, 4, "every factory home splits");
                assert_eq!(intra.intra_fallbacks, 0, "the gate admits no stalls");
                assert_eq!(
                    base.latency.count(),
                    intra.latency.count(),
                    "merged homes drain every latency sample exactly once"
                );
            }
        }
    }

    #[test]
    fn intra_home_composes_with_eviction() {
        // Split homes stay hot; unsplit cold homes still evict around
        // them, and results stay byte-identical.
        let base = run_service_with(
            8,
            2,
            0xFAC7,
            ServiceConfig::new(TimeDelta::from_secs(10)),
            mixed_home,
        );
        let both = run_service_with(
            8,
            2,
            0xFAC7,
            ServiceConfig::new(TimeDelta::from_secs(10))
                .with_max_resident(2)
                .with_intra_home(test_planner()),
            mixed_home,
        );
        assert_eq!(base.homes, both.homes);
        assert_eq!(base.digest(), both.digest());
        assert!(both.intra_homes > 0);
        assert!(both.evictions > 0, "unsplit homes must still evict");
    }

    #[test]
    fn eviction_policies_agree_on_results() {
        let mut by_policy = Vec::new();
        for policy in [EvictionPolicy::CostAware, EvictionPolicy::ColdestFirst] {
            let r = run_service_with(
                8,
                2,
                0xC01D,
                ServiceConfig::new(TimeDelta::from_secs(20))
                    .with_max_resident(1)
                    .with_eviction(policy),
                service_shaped_home,
            );
            assert!(r.evictions > 0, "{policy:?} must evict under budget 1");
            by_policy.push(r);
        }
        let (cost, cold) = (&by_policy[0], &by_policy[1]);
        assert_eq!(
            cost.homes, cold.homes,
            "victim policy must be invisible in results"
        );
        assert_eq!(cost.digest(), cold.digest());
        assert_eq!(cost.slices, cold.slices);
    }

    #[test]
    fn stale_candidate_entries_are_compacted() {
        let mut sc = ShardCore::default();
        // The race the old keyed-by-time set leaked on: a home is
        // parked, claimed by an evictor while a thief re-parks it — the
        // re-park must replace, not duplicate, the candidate entry.
        sc.park_candidate(3, 100);
        sc.park_candidate(3, 250);
        assert_eq!(sc.parked.len(), 1, "re-park compacts the stale entry");
        assert_eq!(sc.best_victim(), Some((250, 3)));
        sc.park_candidate(7, 50);
        assert_eq!(sc.best_victim(), Some((250, 3)), "highest score wins");
        assert!(sc.unpark_candidate(3));
        assert!(!sc.unpark_candidate(3), "second claim loses the race");
        assert_eq!(sc.best_victim(), Some((50, 7)));
        assert!(sc.unpark_candidate(7));
        assert!(sc.parked.is_empty() && sc.scores.is_empty());
    }

    #[test]
    fn resident_run_matches_batch_fleet_exactly() {
        let batch = run_fleet(10, 1, 0x5e7, service_shaped_home);
        let resident = run_service(10, 1, 0x5e7, TimeDelta::from_secs(10), service_shaped_home);
        assert_eq!(batch.homes, resident.homes, "per-home results must match");
        assert_eq!(batch.digest(), resident.digest());
    }

    #[test]
    fn resident_results_are_identical_across_worker_counts_and_stealing() {
        let base = run_service_with(
            9,
            1,
            42,
            ServiceConfig::new(TimeDelta::from_secs(30)).with_steal(false),
            service_shaped_home,
        );
        for workers in [1, 2, 3, 4] {
            for steal in [false, true] {
                let other = run_service_with(
                    9,
                    workers,
                    42,
                    ServiceConfig::new(TimeDelta::from_secs(30)).with_steal(steal),
                    service_shaped_home,
                );
                assert_eq!(
                    base.homes, other.homes,
                    "per-home results must not depend on sharding \
                     ({workers} workers, steal={steal})"
                );
                assert_eq!(base.digest(), other.digest());
                assert_eq!(
                    base.slices, other.slices,
                    "slice structure is worker- and steal-free"
                );
            }
        }
    }

    #[test]
    fn eviction_is_digest_neutral_at_random_budgets() {
        let base = run_service(8, 1, 0xC01D, TimeDelta::from_secs(20), service_shaped_home);
        let mut evictions_seen = 0;
        for max_resident in [0, 1, 2, 5] {
            for workers in [1, 3] {
                let evicted = run_service_with(
                    8,
                    workers,
                    0xC01D,
                    ServiceConfig::new(TimeDelta::from_secs(20)).with_max_resident(max_resident),
                    service_shaped_home,
                );
                assert_eq!(
                    base.homes, evicted.homes,
                    "eviction must be invisible in results \
                     (max_resident={max_resident}, {workers} workers)"
                );
                assert_eq!(base.digest(), evicted.digest());
                assert_eq!(base.slices, evicted.slices);
                assert!(evicted.recoveries <= evicted.evictions);
                evictions_seen += evicted.evictions;
            }
        }
        assert!(evictions_seen > 0, "tight budgets must actually evict");
    }

    #[test]
    fn eviction_bounds_residency_on_cold_fleets() {
        let budget = 2;
        let r = run_service_with(
            10,
            1,
            7,
            ServiceConfig::new(TimeDelta::from_secs(15)).with_max_resident(budget),
            evictable_home,
        );
        let batch = run_fleet(10, 1, 7, evictable_home);
        assert_eq!(batch.homes, r.homes);
        assert!(r.evictions > 0, "a 2-home budget over 10 homes must evict");
        assert!(r.recoveries > 0, "parked homes must come back");
        assert!(
            r.peak_resident_homes <= budget + 1,
            "one worker keeps at most budget parked + 1 in hand, got {}",
            r.peak_resident_homes
        );
        assert!(
            r.approx_resident_home_bytes > r.approx_evicted_home_bytes,
            "eviction must shrink a home's footprint ({} resident vs {} evicted bytes)",
            r.approx_resident_home_bytes,
            r.approx_evicted_home_bytes
        );
    }

    #[test]
    fn uncapped_runs_report_full_residency() {
        let r = run_service(6, 2, 3, TimeDelta::from_secs(10), service_shaped_home);
        assert_eq!(r.peak_resident_homes, 6);
        assert_eq!(r.evictions, 0);
        assert_eq!(r.recoveries, 0);
        assert_eq!(r.approx_evicted_home_bytes, 0);
        assert!(r.approx_resident_home_bytes > 0);
    }

    #[test]
    fn worker_stats_account_for_every_slice_and_home() {
        let r = run_service_with(
            9,
            3,
            11,
            ServiceConfig::new(TimeDelta::from_secs(10)).with_steal(false),
            service_shaped_home,
        );
        assert_eq!(r.worker_stats.len(), 3);
        let slices: u64 = r.worker_stats.iter().map(|w| w.slices_run).sum();
        let homes: usize = r.worker_stats.iter().map(|w| w.homes_run).sum();
        assert_eq!(slices, r.slices);
        assert_eq!(homes, r.homes.len());
        assert_eq!(r.steals(), 0, "steal=false must never steal");
    }

    #[test]
    fn epoch_length_never_changes_results() {
        let batch = run_fleet(6, 2, 7, service_shaped_home);
        for epoch_ms in [1u64, 250, 60_000, 24 * 3_600_000] {
            let resident = run_service(
                6,
                2,
                7,
                TimeDelta::from_millis(epoch_ms),
                service_shaped_home,
            );
            assert_eq!(
                batch.digest(),
                resident.digest(),
                "epoch {epoch_ms}ms must not perturb results"
            );
        }
    }

    #[test]
    fn histogram_sees_every_finished_routine() {
        let r = run_service(8, 3, 11, TimeDelta::from_secs(5), service_shaped_home);
        let raw: u64 = r
            .homes
            .iter()
            .map(|h| h.counters.latencies_ms.len() as u64)
            .sum();
        assert_eq!(r.latency.count(), raw);
        assert!(raw > 0, "the fleet must finish some routines");
        let p99 = r.latency.percentile(0.99).expect("non-empty");
        let exact_max = r
            .homes
            .iter()
            .flat_map(|h| h.counters.latencies_ms.iter().copied())
            .max()
            .unwrap();
        assert_eq!(r.latency.max(), exact_max);
        assert!(p99 <= exact_max);
    }

    #[test]
    fn histogram_is_complete_under_eviction() {
        // Recovery rebuilds the sink's latency vector; the drain cursor
        // must keep every sample exactly once across evict/recover.
        let r = run_service_with(
            8,
            2,
            11,
            ServiceConfig::new(TimeDelta::from_secs(5)).with_max_resident(1),
            service_shaped_home,
        );
        let raw: u64 = r
            .homes
            .iter()
            .map(|h| h.counters.latencies_ms.len() as u64)
            .sum();
        assert_eq!(r.latency.count(), raw);
        assert!(r.evictions > 0);
    }

    #[test]
    fn empty_fleet_is_fine() {
        let r = run_service(0, 4, 1, TimeDelta::from_secs(1), service_shaped_home);
        assert!(r.homes.is_empty());
        assert_eq!(r.workers, 1, "workers clamp to at least one");
        assert!(r.latency.is_empty());
        assert!(r.all_completed(), "vacuously true");
        assert_eq!(r.peak_resident_homes, 0);
    }

    #[test]
    fn sparse_fleet_slices_far_fewer_times_than_events() {
        // The wheel parks homes across their hour-scale gaps: the slice
        // count must track arrival clusters, not total event count.
        let epoch_s = 10u64;
        let r = run_service(10, 2, 3, TimeDelta::from_secs(epoch_s), service_shaped_home);
        assert!(r.slices >= r.homes.len() as u64);
        // Naive polling would touch every home once per epoch over the
        // ~2 h horizon; parking must come in well under that. (Probe
        // loops keep failure-plan homes busier, so the bound is loose.)
        let naive = r.homes.len() as u64 * (2 * 3_600 / epoch_s);
        assert!(
            r.slices < naive / 2,
            "slicing must beat per-epoch polling, got {} slices vs {naive} naive",
            r.slices
        );
    }
}
