//! Resident-fleet service runner: time-sliced open-loop execution.
//!
//! [`fleet::run_fleet`](crate::fleet::run_fleet) is a batch driver: a
//! worker picks a home, runs it to quiescence, and only then picks the
//! next. That is the right shape for throughput experiments, but a
//! serving deployment looks different — every home stays *resident* for
//! the whole day, and traffic arrives open-loop, so no single home may
//! monopolize a worker while the rest fall behind.
//!
//! [`run_service`] keeps all of a worker's homes alive at once and
//! advances them in **epoch slices**: each worker owns a contiguous
//! shard of homes and a private timer wheel ([`EventQueue`]) of
//! `(next-event-time, home)` entries. The worker pops the earliest
//! entry, advances that home only through events due before the next
//! epoch boundary, then re-parks it at its next pending event. A home
//! with an hour-long gap costs nothing during the gap; a home in a
//! burst gets exactly one epoch of attention before its neighbours run.
//!
//! Determinism: slicing changes *when* (in wall-clock terms) a home's
//! events are processed, never *which* events or in what order — each
//! home still consumes its own event queue front-to-back, and homes
//! share no state. Per-home results are therefore byte-identical to the
//! batch driver's, at any worker count and any epoch length (asserted
//! by tests here and by `tests/service_equivalence.rs`).
//!
//! Latency accounting: routine finish latencies are drained after every
//! slice into a constant-memory [`LatencyHistogram`] per worker, merged
//! at the end — the service path can observe p50/p99/p999 over millions
//! of submissions without ever holding the fleet's raw samples in one
//! vector.

use safehome_sim::EventQueue;
use safehome_types::sink::{self, RunCounters};
use safehome_types::{LatencyHistogram, TimeDelta, Timestamp};

use crate::fleet::{home_seed, HomeRun};
use crate::runtime::Step;
use crate::sim::Driver;
use crate::spec::RunSpec;

/// Aggregated result of a resident service run.
///
/// The per-home payload is the same [`HomeRun`] the batch fleet driver
/// produces — that is the point: the two paths are comparable field for
/// field, digest for digest.
#[derive(Clone)]
pub struct ServiceResult {
    /// Per-home results, sorted by home index.
    pub homes: Vec<HomeRun>,
    /// Worker threads used.
    pub workers: usize,
    /// Epoch slice length the run was driven at.
    pub epoch: TimeDelta,
    /// Merged latency histogram over every finished routine in the
    /// fleet (same samples as the per-home `latencies_ms` vectors).
    pub latency: LatencyHistogram,
    /// Total `(pop, advance, re-park)` slices executed. Deterministic —
    /// slice boundaries are absolute simulated-time multiples of the
    /// epoch, so the count depends only on the fleet and the epoch,
    /// never on the worker count.
    pub slices: u64,
}

impl ServiceResult {
    /// Total routines submitted across the fleet (the offered load).
    pub fn offered(&self) -> u64 {
        self.homes.iter().map(|h| h.counters.submitted).sum()
    }

    /// Total committed routines across the fleet.
    pub fn committed(&self) -> u64 {
        self.homes.iter().map(|h| h.counters.committed).sum()
    }

    /// Total aborted routines across the fleet.
    pub fn aborted(&self) -> u64 {
        self.homes.iter().map(|h| h.counters.aborted).sum()
    }

    /// Routines that reached a terminal outcome (committed or aborted).
    pub fn finished(&self) -> u64 {
        self.committed() + self.aborted()
    }

    /// `true` when every home reached quiescence.
    pub fn all_completed(&self) -> bool {
        self.homes.iter().all(|h| h.completed)
    }

    /// Order-sensitive digest over the per-home digests; comparable
    /// directly against [`FleetResult::digest`](crate::FleetResult::digest)
    /// for the same fleet.
    pub fn digest(&self) -> u64 {
        self.homes.iter().fold(sink::DIGEST_SEED, |acc, h| {
            sink::fold_digest(acc, h.counters.digest)
        })
    }
}

/// Runs `homes` resident homes across `workers` threads in epoch slices
/// of `epoch` simulated time.
///
/// `make_spec(home, seed)` builds each home's spec from its derived
/// seed ([`home_seed`]), exactly as for the batch fleet driver; equal
/// inputs give per-home results byte-identical to
/// [`run_fleet`](crate::fleet::run_fleet).
pub fn run_service<F>(
    homes: usize,
    workers: usize,
    fleet_seed: u64,
    epoch: TimeDelta,
    make_spec: F,
) -> ServiceResult
where
    F: Fn(usize, u64) -> RunSpec + Sync,
{
    let workers = workers.clamp(1, homes.max(1));
    let make_spec = &make_spec;

    let shards = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                // Contiguous near-equal split of 0..homes (the same
                // split the stealing fleet seeds its shard cursors
                // with). Residency pins a home to its shard: there is
                // no stealing here, because a stolen home would drag
                // its parked timer-wheel entry across workers.
                let lo = w * homes / workers;
                let hi = (w + 1) * homes / workers;
                scope.spawn(move || run_shard(lo, hi, fleet_seed, epoch, make_spec))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("service worker panicked"))
            .collect::<Vec<ShardOutput>>()
    });

    let mut result = ServiceResult {
        homes: Vec::with_capacity(homes),
        workers,
        epoch,
        latency: LatencyHistogram::new(),
        slices: 0,
    };
    // Shards are contiguous and internally in home order, so
    // concatenation is already sorted by home index.
    for shard in shards {
        result.homes.extend(shard.homes);
        result.latency.merge(&shard.latency);
        result.slices += shard.slices;
    }
    result
}

/// One worker's output: its shard's homes plus the shard-local
/// histogram and slice count.
struct ShardOutput {
    homes: Vec<HomeRun>,
    latency: LatencyHistogram,
    slices: u64,
}

/// Runs homes `[lo, hi)` resident on the calling thread.
fn run_shard<F>(
    lo: usize,
    hi: usize,
    fleet_seed: u64,
    epoch: TimeDelta,
    make_spec: &F,
) -> ShardOutput
where
    F: Fn(usize, u64) -> RunSpec + Sync,
{
    // Specs first, drivers borrowing them second: a driver holds `&spec`
    // for its whole resident lifetime, so the specs must outlive the
    // driver vector in this frame.
    let seeds: Vec<u64> = (lo..hi)
        .map(|home| home_seed(fleet_seed, home as u64))
        .collect();
    let specs: Vec<RunSpec> = (lo..hi)
        .map(|home| make_spec(home, seeds[home - lo]))
        .collect();
    let mut drivers: Vec<Driver<'_, RunCounters>> = specs
        .iter()
        .map(|spec| Driver::with_sink(spec, RunCounters::new()))
        .collect();

    // The shard's timer wheel: earliest pending event per parked home.
    // An eventless home parks at time zero and completes on its first
    // slice (its first step observes idle + quiescent).
    let mut wheel: EventQueue<usize> = EventQueue::new();
    for (i, d) in drivers.iter().enumerate() {
        let at = d.backend().next_event_at().unwrap_or(Timestamp::ZERO);
        wheel.schedule(at, i);
    }

    let epoch_ms = epoch.as_millis().max(1);
    let mut latency = LatencyHistogram::new();
    let mut cursors = vec![0usize; drivers.len()];
    let mut slices = 0u64;

    while let Some((t, i)) = wheel.pop() {
        slices += 1;
        // The slice runs up to the next absolute epoch boundary after
        // the home's due time — boundaries are multiples of the epoch,
        // not offsets from `t`, so slice structure is a property of the
        // fleet clock alone.
        let end = Timestamp::from_millis((t.as_millis() / epoch_ms + 1) * epoch_ms);
        let d = &mut drivers[i];
        loop {
            if d.is_done() {
                break;
            }
            match d.backend().next_event_at() {
                // Due later: re-park. (A home that could already report
                // quiescence but still holds an immaterial probe event
                // parks at most once more — its next slice's first step
                // resolves to done without popping the probe.)
                Some(next) if next >= end => {
                    wheel.schedule(next, i);
                    break;
                }
                _ => match d.step() {
                    Step::Event(_) | Step::Idle => {}
                    Step::Quiescent | Step::Stalled => break,
                },
            }
        }
        // Progressive latency drain: only the routines that finished in
        // this slice, so shard memory stays flat over the horizon.
        let finished = &d.sink().latencies_ms;
        for &ms in &finished[cursors[i]..] {
            latency.record(ms);
        }
        cursors[i] = finished.len();
    }

    let mut homes = Vec::with_capacity(drivers.len());
    for (i, d) in drivers.into_iter().enumerate() {
        let (counters, _, completed) = d.into_output();
        // Catch any samples recorded after the home's last drain.
        for &ms in &counters.latencies_ms[cursors[i]..] {
            latency.record(ms);
        }
        homes.push(HomeRun {
            home: lo + i,
            seed: seeds[i],
            completed,
            counters,
        });
    }
    ShardOutput {
        homes,
        latency,
        slices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::run_fleet;
    use crate::spec::Submission;
    use safehome_core::{EngineConfig, VisibilityModel};
    use safehome_devices::catalog::plug_home;
    use safehome_devices::FailurePlan;
    use safehome_sim::SimRng;
    use safehome_types::{DeviceId, Routine, Value};

    /// An open-loop-shaped home: arrivals spread over a long, sparse
    /// horizon (exercising the wheel's outer levels), and a seeded
    /// minority of homes carry a fail-stop plan (exercising probe
    /// events and aborts under slicing).
    fn service_shaped_home(_: usize, seed: u64) -> RunSpec {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut spec =
            RunSpec::new(plug_home(4), EngineConfig::new(VisibilityModel::ev())).with_seed(seed);
        let n = 3 + (rng.next_u64() % 4) as usize;
        for i in 0..n {
            let mut b = Routine::builder(format!("r{i}"));
            for j in 0..2u32 {
                b = b.set(
                    DeviceId((i as u32 + j) % 4),
                    Value::ON,
                    TimeDelta::from_millis(50),
                );
            }
            // Sparse arrivals over ~2 hours: most epochs are empty for
            // most homes, the resident runner's natural habitat.
            spec.submit(Submission::at(
                b.build(),
                Timestamp::from_millis(rng.next_u64() % (2 * 3_600_000)),
            ));
        }
        if rng.next_u64().is_multiple_of(4) {
            spec.failures =
                FailurePlan::random_fail_stop(4, 0.3, Timestamp::from_millis(3_600_000), &mut rng);
        }
        spec
    }

    #[test]
    fn resident_run_matches_batch_fleet_exactly() {
        let batch = run_fleet(10, 1, 0x5e7, service_shaped_home);
        let resident = run_service(10, 1, 0x5e7, TimeDelta::from_secs(10), service_shaped_home);
        assert_eq!(batch.homes, resident.homes, "per-home results must match");
        assert_eq!(batch.digest(), resident.digest());
    }

    #[test]
    fn resident_results_are_identical_across_worker_counts() {
        let base = run_service(9, 1, 42, TimeDelta::from_secs(30), service_shaped_home);
        for workers in [2, 3, 4] {
            let other = run_service(
                9,
                workers,
                42,
                TimeDelta::from_secs(30),
                service_shaped_home,
            );
            assert_eq!(
                base.homes, other.homes,
                "per-home results must not depend on sharding ({workers} workers)"
            );
            assert_eq!(base.digest(), other.digest());
            assert_eq!(base.slices, other.slices, "slice structure is worker-free");
        }
    }

    #[test]
    fn epoch_length_never_changes_results() {
        let batch = run_fleet(6, 2, 7, service_shaped_home);
        for epoch_ms in [1u64, 250, 60_000, 24 * 3_600_000] {
            let resident = run_service(
                6,
                2,
                7,
                TimeDelta::from_millis(epoch_ms),
                service_shaped_home,
            );
            assert_eq!(
                batch.digest(),
                resident.digest(),
                "epoch {epoch_ms}ms must not perturb results"
            );
        }
    }

    #[test]
    fn histogram_sees_every_finished_routine() {
        let r = run_service(8, 3, 11, TimeDelta::from_secs(5), service_shaped_home);
        let raw: u64 = r
            .homes
            .iter()
            .map(|h| h.counters.latencies_ms.len() as u64)
            .sum();
        assert_eq!(r.latency.count(), raw);
        assert!(raw > 0, "the fleet must finish some routines");
        let p99 = r.latency.percentile(0.99).expect("non-empty");
        let exact_max = r
            .homes
            .iter()
            .flat_map(|h| h.counters.latencies_ms.iter().copied())
            .max()
            .unwrap();
        assert_eq!(r.latency.max(), exact_max);
        assert!(p99 <= exact_max);
    }

    #[test]
    fn empty_fleet_is_fine() {
        let r = run_service(0, 4, 1, TimeDelta::from_secs(1), service_shaped_home);
        assert!(r.homes.is_empty());
        assert_eq!(r.workers, 1, "workers clamp to at least one");
        assert!(r.latency.is_empty());
        assert!(r.all_completed(), "vacuously true");
    }

    #[test]
    fn sparse_fleet_slices_far_fewer_times_than_events() {
        // The wheel parks homes across their hour-scale gaps: the slice
        // count must track arrival clusters, not total event count.
        let epoch_s = 10u64;
        let r = run_service(10, 2, 3, TimeDelta::from_secs(epoch_s), service_shaped_home);
        assert!(r.slices >= r.homes.len() as u64);
        // Naive polling would touch every home once per epoch over the
        // ~2 h horizon; parking must come in well under that. (Probe
        // loops keep failure-plan homes busier, so the bound is loose.)
        let naive = r.homes.len() as u64 * (2 * 3_600 / epoch_s);
        assert!(
            r.slices < naive / 2,
            "slicing must beat per-epoch polling, got {} slices vs {naive} naive",
            r.slices
        );
    }
}
