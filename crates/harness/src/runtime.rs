//! The backend-independent home runtime.
//!
//! SafeHome's contribution is a *runtime* — visibility models plus atomic
//! routines — and that runtime is the same whether commands travel over a
//! simulated event queue or live sockets. [`HomeRuntime`] is that shared
//! mediation layer: it owns the [`Engine`], the [`TraceSink`], the effect
//! scratch and the submission bookkeeping (scheduled arrivals, `After`
//! deferral chains, `sub_of_routine` mapping), and it interprets engine
//! effects, detector transitions and command completions identically for
//! every backend.
//!
//! A [`Backend`] supplies what differs: the clock, device I/O and the
//! event source. [`crate::sim::SimBackend`] wraps the calendar-wheel
//! [`safehome_sim::EventQueue`] plus a `Vec` of
//! [`safehome_devices::VirtualDevice`]s (the discrete-event harness —
//! [`crate::Driver`] is `HomeRuntime` over it); `safehome-kasa`'s
//! `KasaBackend` wraps TCP drivers, worker threads and a wall clock (the
//! §6 edge deployment). Layering:
//!
//! ```text
//!   Engine (pure state machine: inputs → effects)
//!      ↑ inputs                 ↓ effects
//!   HomeRuntime (submission/deferral, sink feeding, quiescence)
//!      ↑ Polled / callbacks     ↓ dispatch / set_timer / schedule_submit
//!   Backend (SimBackend | KasaBackend | your backend)
//! ```
//!
//! The split is callback-shaped on purpose: a backend's [`Backend::poll`]
//! consumes one event from its own source and *calls back* into the
//! [`RuntimeCore`] ([`RuntimeCore::submit_indexed`],
//! [`RuntimeCore::on_command`], [`RuntimeCore::emit_detection`],
//! [`RuntimeCore::on_timer`]), so the exact interleaving of sink records,
//! engine inputs and backend scheduling — which the per-home digests pin
//! byte-for-byte — is owned by one piece of code instead of being
//! re-implemented per backend.

use safehome_core::journal::{EventPayload, ExecutionJournal, JournalWriter};
use safehome_core::{Effect, EffectBuf, Engine, Input, TimerId};
use safehome_devices::{Detection, DispatchTicket};
use safehome_types::{
    sink::TraceSink,
    trace::{CmdOutcome, TraceEventKind},
    DeviceId, Result, Routine, RoutineId, TimeDelta, Timestamp, Value,
};
use std::collections::BTreeMap;

use crate::spec::{Arrival, Submission};

/// What one [`HomeRuntime::step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// One event was processed at the given (run-relative) time.
    Event(Timestamp),
    /// The run reached quiescence; every submission resolved.
    Quiescent,
    /// The run cannot make further progress: an unsatisfiable submission
    /// dependency or the time horizon was hit.
    Stalled,
    /// Nothing arrived within the backend's poll window (real-time
    /// backends only; the simulation backend never idles).
    Idle,
}

/// What a [`Backend::poll`] call produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Polled {
    /// One event was consumed (and fed to the core) at the given time.
    Event(Timestamp),
    /// The event source is permanently empty (simulation queue drained).
    Exhausted,
    /// An event arrived past [`RuntimeCore::horizon`]; it was discarded
    /// and the run must stall.
    PastHorizon,
    /// Nothing arrived within the poll window; the caller re-checks
    /// quiescence and the horizon, then polls again.
    Idle(Timestamp),
}

/// A completed (or failed) command as the backend observed it.
///
/// Bundles everything the runtime must interleave in its pinned order:
/// the device's state change (if the backend can observe one), the
/// detector transition implied by the reply (a dead command reply is an
/// implicit down-detection; a reply from a believed-down device is an
/// implicit up), and the command result itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandOutcome {
    /// The device the command ran on.
    pub device: DeviceId,
    /// The dispatch this resolves.
    pub ticket: DispatchTicket,
    /// `true` if the command succeeded.
    pub success: bool,
    /// Observed value (reads only).
    pub observed: Option<Value>,
    /// New device state if the command was a write that took effect.
    pub new_state: Option<Value>,
    /// Health transition implied by this reply, if any.
    pub detection: Option<Detection>,
}

/// Clock, device I/O and event source for one home.
///
/// Implementations own their side of the world (queues, sockets, RNG,
/// detectors) and translate it into [`RuntimeCore`] callbacks from
/// [`Backend::poll`]. See the module docs for the layering and
/// `README.md` ("Adding a backend") for a checklist.
pub trait Backend {
    /// `true` when no backend-side work is outstanding: no material
    /// simulated events scheduled, no live commands in flight, no
    /// pending scheduled submissions.
    fn idle(&self) -> bool;

    /// The current run-relative time on this backend's clock.
    fn now(&self) -> Timestamp;

    /// Sends a command toward a device.
    fn dispatch(&mut self, now: Timestamp, device: DeviceId, ticket: DispatchTicket);

    /// Arms an engine timer for `at` (run-relative; stale firings are
    /// tolerated by the engine and must be delivered anyway).
    fn set_timer(&mut self, at: Timestamp, timer: TimerId);

    /// Schedules workload submission `index` for `at`.
    fn schedule_submit(&mut self, at: Timestamp, index: usize);

    /// Consumes one event from the backend's source, feeding it to the
    /// core via its callbacks.
    fn poll<S: TraceSink>(&mut self, core: &mut RuntimeCore<'_, S>) -> Polled;

    /// Reads the devices' actual end states.
    fn end_states(&mut self) -> BTreeMap<DeviceId, Value>;

    /// Called once per run at [`HomeRuntime::into_output`] with the
    /// core's recyclable tables; pooling backends stash them for the
    /// next home. The default drops them.
    fn reclaim(&mut self, tables: HomeTables) {
        let _ = tables;
    }
}

/// The per-home submission/deferral bookkeeping, as dense `Vec`-indexed
/// tables (submission indices and [`RoutineId`]s are both dense per
/// home), so a pool can recycle the allocations across homes.
///
/// Backends that pool (see `HomeStatePool` in [`crate::sim`]) receive
/// the tables back through [`Backend::reclaim`] and hand them to the
/// next run; [`HomeTables::reset`] clears contents while keeping every
/// inner allocation.
#[derive(Debug, Default)]
pub struct HomeTables {
    /// `deferred[pred]` = submissions waiting on predecessor `pred`
    /// (pairs of dependent index and extra delay).
    deferred: Vec<Vec<(usize, TimeDelta)>>,
    /// `sub_of_routine[id − 1]` = workload index of the routine, or
    /// `NO_SUB` for interactively submitted routines.
    sub_of_routine: Vec<u32>,
    /// Routines that committed, in commit order.
    committed: Vec<RoutineId>,
    /// Routines that aborted, in abort order.
    aborted: Vec<RoutineId>,
}

/// Sentinel for "routine has no workload index".
const NO_SUB: u32 = u32::MAX;

impl HomeTables {
    /// Fresh, empty tables.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears contents for a workload of `submissions` entries, keeping
    /// the outer and every inner allocation.
    pub fn reset(&mut self, submissions: usize) {
        for slot in &mut self.deferred {
            slot.clear();
        }
        if self.deferred.len() < submissions {
            self.deferred.resize_with(submissions, Vec::new);
        }
        self.sub_of_routine.clear();
        self.committed.clear();
        self.aborted.clear();
    }

    fn defer(&mut self, pred: usize, dep: usize, delay: TimeDelta) {
        self.deferred[pred].push((dep, delay));
    }

    fn set_sub_of(&mut self, id: RoutineId, sub: Option<usize>) {
        let idx = (id.0 as usize).saturating_sub(1); // ids are dense from 1
        if self.sub_of_routine.len() <= idx {
            self.sub_of_routine.resize(idx + 1, NO_SUB);
        }
        self.sub_of_routine[idx] = sub.map_or(NO_SUB, |s| s as u32);
    }

    fn sub_of(&self, id: RoutineId) -> Option<usize> {
        let idx = (id.0 as usize).checked_sub(1)?;
        match self.sub_of_routine.get(idx) {
            Some(&s) if s != NO_SUB => Some(s as usize),
            _ => None,
        }
    }
}

/// The backend-independent half of a [`HomeRuntime`]: engine, sink,
/// effect scratch, workload bookkeeping and quiescence state.
///
/// Backends receive `&mut RuntimeCore` in [`Backend::poll`] and feed
/// events through the callback methods below; each callback records to
/// the sink, drives the engine and interprets the resulting effects
/// (dispatches and timers go back to the backend) in the one canonical
/// order.
pub struct RuntimeCore<'a, S: TraceSink> {
    pub(crate) engine: Engine,
    sink: S,
    /// Scratch for engine effects, drained in place after every
    /// `submit`/`handle` call: the steady-state loop allocates nothing
    /// per event.
    fx: EffectBuf,
    workload: &'a [Submission],
    horizon: Timestamp,
    tables: HomeTables,
    /// `After` submissions not yet scheduled.
    unscheduled: usize,
    pub(crate) completed: bool,
    pub(crate) done: bool,
    /// The optional execution journal hook. `None` (the default) keeps
    /// the hot path journal-free; [`JournalWriter::record`] appends every
    /// event on the live path, [`JournalWriter::verify`] cross-checks
    /// replay against recorded history (see [`crate::journal`]).
    pub(crate) journal: Option<JournalWriter>,
}

impl<'a, S: TraceSink> RuntimeCore<'a, S> {
    /// Builds a core, optionally with a journal hook. Emits (or, in verify
    /// mode, checks) the `Genesis` record: initial committed states,
    /// workload size and horizon — everything replay needs to cross-check
    /// that it was handed the same run the journal describes.
    pub(crate) fn with_journal(
        engine: Engine,
        sink: S,
        workload: &'a [Submission],
        horizon: Timestamp,
        mut tables: HomeTables,
        journal: Option<JournalWriter>,
    ) -> Self {
        tables.reset(workload.len());
        let mut core = RuntimeCore {
            engine,
            sink,
            fx: EffectBuf::new(),
            workload,
            horizon,
            tables,
            unscheduled: 0,
            completed: false,
            done: false,
            journal,
        };
        if core.journaling() {
            let initial = core.engine.committed_states();
            core.jot(
                Timestamp::ZERO,
                EventPayload::Genesis {
                    initial,
                    workload: workload.len() as u64,
                    horizon,
                },
            );
        }
        core
    }

    /// `true` when a journal hook is installed.
    #[inline]
    fn journaling(&self) -> bool {
        self.journal.is_some()
    }

    /// Emits one journal event (no-op without a journal hook). Payloads
    /// whose construction allocates are gated on [`Self::journaling`] at
    /// the call site; everything else is cheap enough to build eagerly.
    #[inline]
    pub(crate) fn jot(&mut self, at: Timestamp, payload: EventPayload) {
        if let Some(w) = &mut self.journal {
            w.emit(at, payload);
        }
    }

    /// The time horizon: an event (or idle wait) past this instant
    /// stalls the run. Virtual-time backends use the spec's safety
    /// horizon; wall-clock backends use the caller's deadline.
    pub fn horizon(&self) -> Timestamp {
        self.horizon
    }

    /// Forwards a pop boundary to the sink (see
    /// [`TraceSink::pop_boundary`]). Traced backends call this once per
    /// handled event, before any of the pop's sink records.
    pub(crate) fn mark_pop_boundary(&mut self) {
        self.sink.pop_boundary();
    }

    /// Registers the workload's arrivals with the backend: absolute
    /// arrivals are scheduled, `After` chains are parked in the deferral
    /// table until their predecessor finishes (journaled as
    /// `DeferralArmed`, so recovery can rebuild pending chains).
    pub(crate) fn schedule_workload<B: Backend>(&mut self, b: &mut B) {
        for i in 0..self.workload.len() {
            match self.workload[i].arrival {
                Arrival::At(at) => b.schedule_submit(at, i),
                Arrival::After { index, delay } => {
                    assert!(index < self.workload.len(), "dangling dependency");
                    self.tables.defer(index, i, delay);
                    self.unscheduled += 1;
                    self.jot(
                        Timestamp::ZERO,
                        EventPayload::DeferralArmed {
                            pred: index as u64,
                            dep: i as u64,
                            delay,
                        },
                    );
                }
            }
        }
    }

    /// Submits workload entry `i` (a scheduled arrival came due).
    ///
    /// # Panics
    ///
    /// Panics if the submission references an unknown device (specs are
    /// authored by the workload generators, which validate against the
    /// home).
    pub fn submit_indexed<B: Backend>(&mut self, i: usize, now: Timestamp, b: &mut B) {
        // `workload` is a `Copy` reference with lifetime `'a`, so the
        // routine borrow is independent of `self` below.
        let routine = &self.workload[i].routine;
        let id = self
            .engine
            .submit(routine.clone(), now, &mut self.fx)
            .expect("workload validated against home");
        self.tables.set_sub_of(id, Some(i));
        if self.journaling() {
            self.jot(
                now,
                EventPayload::RoutineSubmitted {
                    id,
                    sub: Some(i as u64),
                    routine: routine.clone(),
                },
            );
        }
        self.sink.record_submission(id, routine, now);
        self.apply_effects(now, b);
    }

    /// Submits a routine outside the workload (interactive use; nothing
    /// chains after it).
    pub fn submit_now<B: Backend>(
        &mut self,
        routine: Routine,
        now: Timestamp,
        b: &mut B,
    ) -> Result<RoutineId> {
        let id = self.engine.submit(routine.clone(), now, &mut self.fx)?;
        self.tables.set_sub_of(id, None);
        if self.journaling() {
            self.jot(
                now,
                EventPayload::RoutineSubmitted {
                    id,
                    sub: None,
                    routine: routine.clone(),
                },
            );
        }
        self.sink.record_submission(id, &routine, now);
        self.apply_effects(now, b);
        Ok(id)
    }

    /// Feeds a detector transition: journals and records it, tells the
    /// engine, and applies the effects (aborts, deferrals, rollbacks).
    pub fn emit_detection<B: Backend>(&mut self, det: Detection, now: Timestamp, b: &mut B) {
        self.jot(
            now,
            match det {
                Detection::Down(d) => EventPayload::DeviceDown { device: d },
                Detection::Up(d) => EventPayload::DeviceUp { device: d },
            },
        );
        self.detect(det, now, b);
    }

    /// [`Self::emit_detection`] without the journal record — the path for
    /// edges implied by a command reply, which are journaled inside the
    /// `WriteCompleted` record instead (one input event per reply).
    fn detect<B: Backend>(&mut self, det: Detection, now: Timestamp, b: &mut B) {
        let (kind, input) = match det {
            Detection::Down(d) => (
                TraceEventKind::DeviceDownDetected { device: d },
                Input::DeviceDown { device: d },
            ),
            Detection::Up(d) => (
                TraceEventKind::DeviceUpDetected { device: d },
                Input::DeviceUp { device: d },
            ),
        };
        self.sink.record(now, kind);
        self.engine.handle(input, now, &mut self.fx);
        self.apply_effects(now, b);
    }

    /// Feeds one resolved command, in the canonical order: the observed
    /// state change, then the implied detection (which may abort
    /// routines *before* the result lands), then the completion record,
    /// then the engine's own handling of the result.
    pub fn on_command<B: Backend>(&mut self, now: Timestamp, outcome: CommandOutcome, b: &mut B) {
        let CommandOutcome {
            device,
            ticket,
            success,
            observed,
            new_state,
            detection,
        } = outcome;
        let routine = ticket.routine.expect("runtime tickets carry routines");
        // Phase 3 of the side-effect journal: the full outcome (including
        // the implied detector edge) is one durable input record, the
        // exactly-once cache recovery consults before re-issuing writes.
        self.jot(
            now,
            EventPayload::WriteCompleted {
                routine,
                idx: ticket.idx,
                device,
                action: ticket.action,
                duration: ticket.duration,
                rollback: ticket.rollback,
                success,
                observed,
                new_state,
                edge: detection.map(|d| matches!(d, Detection::Up(_))),
            },
        );
        if let Some(v) = new_state {
            self.sink.record(
                now,
                TraceEventKind::StateChanged {
                    device,
                    value: v,
                    by: ticket.routine,
                    rollback: ticket.rollback,
                },
            );
        }
        if let Some(det) = detection {
            self.detect(det, now, b);
        }
        if !ticket.rollback {
            self.sink.record(
                now,
                TraceEventKind::CommandCompleted {
                    routine,
                    idx: ticket.idx,
                    device,
                    outcome: if success {
                        CmdOutcome::Success { observed }
                    } else {
                        CmdOutcome::Failed
                    },
                },
            );
        }
        self.engine.handle(
            Input::CommandResult {
                routine,
                idx: ticket.idx,
                device,
                success,
                observed,
                rollback: ticket.rollback,
            },
            now,
            &mut self.fx,
        );
        self.apply_effects(now, b);
    }

    /// Feeds a fired engine timer.
    pub fn on_timer<B: Backend>(&mut self, timer: TimerId, now: Timestamp, b: &mut B) {
        self.jot(now, EventPayload::TimerFired { timer });
        self.engine
            .handle(Input::Timer { timer }, now, &mut self.fx);
        self.apply_effects(now, b);
    }

    /// Drains the effect scratch in place, interpreting each effect. The
    /// buffer is always fully drained before the next engine call, so
    /// one reusable allocation serves the whole run.
    fn apply_effects<B: Backend>(&mut self, now: Timestamp, b: &mut B) {
        // The loop needs `&mut self` (sink, tables) and the backend, so
        // detach the buffer for its duration; effects never re-enter the
        // engine here, so nothing else writes to it meanwhile.
        let mut fx = std::mem::take(&mut self.fx);
        for e in fx.drain(..) {
            match e {
                Effect::Dispatch {
                    routine,
                    idx,
                    device,
                    action,
                    duration,
                    rollback,
                } => {
                    // Phase 1: intent is durable before anything is sent.
                    self.jot(
                        now,
                        EventPayload::WriteScheduled {
                            routine,
                            idx,
                            device,
                            action,
                            duration,
                            rollback,
                        },
                    );
                    if !rollback {
                        self.sink.record(
                            now,
                            TraceEventKind::CommandDispatched {
                                routine,
                                idx,
                                device,
                            },
                        );
                    }
                    let ticket = DispatchTicket {
                        routine: Some(routine),
                        idx,
                        action,
                        duration,
                        rollback,
                    };
                    b.dispatch(now, device, ticket);
                    // Phase 2: the command is in the I/O layer's hands —
                    // after a crash it may or may not have reached the
                    // device.
                    self.jot(
                        now,
                        EventPayload::WriteStarted {
                            routine,
                            idx,
                            device,
                            rollback,
                        },
                    );
                }
                Effect::SetTimer { timer, at } => {
                    self.jot(now, EventPayload::TimerArmed { timer, fire_at: at });
                    b.set_timer(at, timer)
                }
                Effect::Started { routine } => {
                    self.jot(now, EventPayload::RoutineStarted { routine });
                    self.sink.record(now, TraceEventKind::Started { routine });
                }
                Effect::Committed { routine } => {
                    self.jot(now, EventPayload::RoutineCommitted { routine });
                    self.sink.record(now, TraceEventKind::Committed { routine });
                    self.tables.committed.push(routine);
                    self.release_dependents(routine, now, b);
                }
                Effect::Aborted {
                    routine,
                    reason,
                    executed,
                    rolled_back,
                } => {
                    self.jot(
                        now,
                        EventPayload::RoutineAborted {
                            routine,
                            reason,
                            executed,
                            rolled_back,
                        },
                    );
                    self.sink.record(
                        now,
                        TraceEventKind::Aborted {
                            routine,
                            reason,
                            executed,
                            rolled_back,
                        },
                    );
                    self.tables.aborted.push(routine);
                    self.release_dependents(routine, now, b);
                }
                Effect::BestEffortSkipped {
                    routine,
                    idx,
                    device,
                } => {
                    self.jot(
                        now,
                        EventPayload::WriteSkipped {
                            routine,
                            idx,
                            device,
                        },
                    );
                    self.sink.record(
                        now,
                        TraceEventKind::BestEffortSkipped {
                            routine,
                            idx,
                            device,
                        },
                    );
                }
                Effect::Feedback { routine, message } => {
                    self.jot(now, EventPayload::Feedback { routine, message });
                }
            }
        }
        debug_assert!(
            self.fx.is_empty(),
            "effects appended to the scratch during the drain would be lost"
        );
        self.fx = fx;
    }

    fn release_dependents<B: Backend>(&mut self, routine: RoutineId, now: Timestamp, b: &mut B) {
        let Some(sub) = self.tables.sub_of(routine) else {
            return;
        };
        // Detach the dependent list (put back afterwards so the pool
        // keeps its allocation); a dependent's own dependents live in
        // different slots, so the loop never touches this one.
        let mut deps = std::mem::take(&mut self.tables.deferred[sub]);
        for &(dep_index, delay) in &deps {
            self.unscheduled -= 1;
            self.jot(
                now,
                EventPayload::DeferralReleased {
                    pred: routine,
                    dep: dep_index as u64,
                    at: now + delay,
                },
            );
            b.schedule_submit(now + delay, dep_index);
        }
        deps.clear();
        self.tables.deferred[sub] = deps;
    }
}

/// One home's execution: a [`RuntimeCore`] bound to a [`Backend`].
///
/// This is the one mediation layer of the reproduction: the simulated
/// [`crate::Driver`] and the kasa real-time runner are both thin shells
/// over it, so dispatch, deferral, sink feeding and quiescence behave
/// identically — and improvements land on both at once.
pub struct HomeRuntime<'a, B: Backend, S: TraceSink> {
    pub(crate) core: RuntimeCore<'a, S>,
    pub(crate) backend: B,
}

impl<'a, B: Backend, S: TraceSink> HomeRuntime<'a, B, S> {
    /// Assembles a runtime from its parts and registers the workload's
    /// arrivals with the backend. `tables` usually come from a pool
    /// (reset here); pass `HomeTables::new()` otherwise.
    pub fn assemble(
        engine: Engine,
        sink: S,
        workload: &'a [Submission],
        horizon: Timestamp,
        tables: HomeTables,
        backend: B,
    ) -> Self {
        Self::assemble_journaled(engine, sink, workload, horizon, tables, backend, None)
    }

    /// As [`HomeRuntime::assemble`], with an optional journal hook
    /// ([`JournalWriter::record`] for a durable live run). Journaling is
    /// opt-in and invisible to the sink: the recorded event stream — and
    /// therefore the per-home digests — is identical with or without it.
    pub fn assemble_journaled(
        engine: Engine,
        sink: S,
        workload: &'a [Submission],
        horizon: Timestamp,
        tables: HomeTables,
        mut backend: B,
        journal: Option<JournalWriter>,
    ) -> Self {
        let mut core = RuntimeCore::with_journal(engine, sink, workload, horizon, tables, journal);
        core.schedule_workload(&mut backend);
        HomeRuntime { core, backend }
    }

    /// Rebinds a recovered [`RuntimeCore`] (see `crate::journal::recover`)
    /// to a backend: the crash/restore path. With the *surviving* backend
    /// (the sim's crash injection) the continuation is event-for-event
    /// identical to an uncrashed run; with a fresh backend, follow up with
    /// [`HomeRuntime::redrive`] to re-issue in-flight work.
    pub fn resume(core: RuntimeCore<'a, S>, backend: B) -> Self {
        HomeRuntime { core, backend }
    }

    /// The current run-relative time.
    pub fn now(&self) -> Timestamp {
        self.backend.now()
    }

    /// Read access to the sink (inspect mid-run state between steps).
    pub fn sink(&self) -> &S {
        &self.core.sink
    }

    /// Read access to the engine.
    pub fn engine(&self) -> &Engine {
        &self.core.engine
    }

    /// Read access to the backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Write access to the backend (post-assembly scheduling, injection
    /// control).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// The execution journal, when journaling is enabled.
    pub fn journal(&self) -> Option<&ExecutionJournal> {
        self.core.journal.as_ref().map(JournalWriter::journal)
    }

    /// Simulates a controller crash: drops every piece of runtime state
    /// (engine, sink, tables — exactly what a process death loses) and
    /// returns the durable journal plus the backend, which represents the
    /// world (devices, in-flight commands) and survives the controller.
    ///
    /// # Panics
    ///
    /// Panics if the runtime was assembled without a journal — there is
    /// nothing durable to crash onto.
    pub fn crash(self) -> (ExecutionJournal, B) {
        let writer = self
            .core
            .journal
            .expect("crash() requires a journaling runtime (assemble_journaled)");
        (writer.into_journal(), self.backend)
    }

    /// Engine model invariants plus — when journaling — the journal's
    /// replay invariants, via `Engine::check_invariants_with_journal`.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        match self.journal() {
            Some(j) => self.core.engine.check_invariants_with_journal(j),
            None => self.core.engine.check_invariants(),
        }
    }

    /// Routines that committed so far, in commit order.
    pub fn committed_ids(&self) -> &[RoutineId] {
        &self.core.tables.committed
    }

    /// Routines that aborted so far, in abort order.
    pub fn aborted_ids(&self) -> &[RoutineId] {
        &self.core.tables.aborted
    }

    /// `true` once the run has ended (quiescent or stalled).
    pub fn is_done(&self) -> bool {
        self.core.done
    }

    /// Moves the stall horizon (wall-clock backends set it per
    /// `run_to_quiescence` deadline).
    ///
    /// Extending the horizon *reopens* a run that stalled without
    /// completing — a real-time runner whose deadline expired resumes
    /// draining events on the next `run_to_quiescence` call, exactly
    /// like the pre-unification deadline loop. (A quiescent run stays
    /// finished; a genuinely stuck run just stalls again.)
    pub fn set_horizon(&mut self, horizon: Timestamp) {
        self.core.horizon = horizon;
        if !self.core.completed {
            self.core.done = false;
        }
    }

    /// Submits a routine right now, outside the workload.
    ///
    /// Reopens a finished run: submitting new work after quiescence (the
    /// interactive real-time pattern — submit, run, submit more, run
    /// again) puts the runtime back in the running state so the next
    /// [`HomeRuntime::step`] drives the new routine instead of replaying
    /// the old terminal answer.
    pub fn submit_now(&mut self, routine: Routine) -> Result<RoutineId> {
        let now = self.backend.now();
        let id = self.core.submit_now(routine, now, &mut self.backend)?;
        self.core.done = false;
        self.core.completed = false;
        Ok(id)
    }

    fn terminal(&self) -> Step {
        if self.core.completed {
            Step::Quiescent
        } else {
            Step::Stalled
        }
    }

    /// Advances by one backend event.
    ///
    /// The quiescence bookkeeping lives here — once, for every backend:
    /// the run ends when the backend is idle and the engine quiescent
    /// (completed unless deferred submissions never became schedulable),
    /// when the event source is exhausted, or when the horizon passes.
    pub fn step(&mut self) -> Step {
        if self.core.done {
            return self.terminal();
        }
        if self.backend.idle() && self.core.engine.quiescent() {
            self.core.done = true;
            self.core.completed = self.core.unscheduled == 0;
            return self.terminal();
        }
        match self.backend.poll(&mut self.core) {
            Polled::Event(now) => Step::Event(now),
            Polled::Exhausted => {
                self.core.done = true;
                self.core.completed = self.core.engine.quiescent() && self.core.unscheduled == 0;
                self.terminal()
            }
            Polled::PastHorizon => {
                self.core.done = true;
                self.core.completed = false;
                Step::Stalled
            }
            Polled::Idle(now) => {
                if now > self.core.horizon {
                    self.core.done = true;
                    self.core.completed = false;
                    Step::Stalled
                } else {
                    Step::Idle
                }
            }
        }
    }

    /// Steps until the run ends; `true` when it reached quiescence.
    pub fn run_to_quiescence(&mut self) -> bool {
        loop {
            match self.step() {
                Step::Event(_) | Step::Idle => {}
                Step::Quiescent => return true,
                Step::Stalled => return false,
            }
        }
    }

    /// Finalizes the sink (witness order, end states, congruence) and
    /// returns it with the engine's committed states and the completion
    /// flag. Callable at any point; an unfinished run reports
    /// `completed = false`. The recyclable tables go back to the backend
    /// (pooling backends keep them for the next home).
    pub fn into_output(self) -> (S, BTreeMap<DeviceId, Value>, bool) {
        let HomeRuntime {
            mut core,
            mut backend,
        } = self;
        let end_states = backend.end_states();
        let committed = core.engine.committed_states();
        core.sink
            .finish(core.engine.witness_order(), end_states, &committed);
        backend.reclaim(std::mem::take(&mut core.tables));
        (core.sink, committed, core.completed)
    }
}
