//! Run specifications.

use safehome_core::EngineConfig;
use safehome_devices::{FailurePlan, Home, LatencyModel};
use safehome_types::{Routine, TimeDelta, Timestamp};

/// When a routine is submitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// At an absolute time.
    At(Timestamp),
    /// `delay` after submission number `index` finishes (commits or
    /// aborts). This expresses the trace scenarios' real-life ordering
    /// constraints ("wake-up before cook breakfast", §7.2) and the
    /// closed-loop factory workers / microbenchmark injectors (ρ
    /// back-to-back chains, Table 3).
    After {
        /// Index (into [`RunSpec::submissions`]) of the predecessor.
        index: usize,
        /// Extra delay after the predecessor finishes.
        delay: TimeDelta,
    },
}

/// One routine submission.
#[derive(Debug, Clone, PartialEq)]
pub struct Submission {
    /// The routine to submit.
    pub routine: Routine,
    /// When to submit it.
    pub arrival: Arrival,
}

impl Submission {
    /// A submission at an absolute time.
    pub fn at(routine: Routine, at: Timestamp) -> Self {
        Submission {
            routine,
            arrival: Arrival::At(at),
        }
    }

    /// A submission chained after another submission finishes.
    pub fn after(routine: Routine, index: usize, delay: TimeDelta) -> Self {
        Submission {
            routine,
            arrival: Arrival::After { index, delay },
        }
    }
}

/// Everything one simulated run needs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// The home's device catalog.
    pub home: Home,
    /// Engine configuration (visibility model, leases, scheduler, ...).
    pub config: EngineConfig,
    /// The workload.
    pub submissions: Vec<Submission>,
    /// Ground-truth failure injections.
    pub failures: FailurePlan,
    /// Per-dispatch actuation latency.
    pub latency: LatencyModel,
    /// Detector ping interval (paper: 1 s).
    pub ping_interval: TimeDelta,
    /// Detector / command timeout (paper: 100 ms).
    pub detect_timeout: TimeDelta,
    /// RNG seed (latency jitter).
    pub seed: u64,
    /// Safety stop: the run aborts (with `completed = false`) if virtual
    /// time passes this horizon without reaching quiescence.
    pub max_time: Timestamp,
}

impl RunSpec {
    /// A spec with the paper's defaults and no failures.
    pub fn new(home: Home, config: EngineConfig) -> Self {
        RunSpec {
            home,
            config,
            submissions: Vec::new(),
            failures: FailurePlan::none(),
            latency: LatencyModel::default(),
            ping_interval: TimeDelta::from_secs(1),
            detect_timeout: TimeDelta::from_millis(100),
            seed: 0,
            max_time: Timestamp::from_secs(7 * 24 * 3600), // one week
        }
    }

    /// Adds a submission; returns its index for `After` chaining.
    pub fn submit(&mut self, s: Submission) -> usize {
        self.submissions.push(s);
        self.submissions.len() - 1
    }

    /// Builder-style seed setter.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safehome_core::VisibilityModel;
    use safehome_devices::catalog::plug_home;
    use safehome_types::{DeviceId, Value};

    #[test]
    fn submission_builders() {
        let r = Routine::builder("r")
            .set(DeviceId(0), Value::ON, TimeDelta::from_millis(10))
            .build();
        let s1 = Submission::at(r.clone(), Timestamp::from_secs(1));
        assert_eq!(s1.arrival, Arrival::At(Timestamp::from_secs(1)));
        let s2 = Submission::after(r, 0, TimeDelta::from_secs(2));
        assert_eq!(
            s2.arrival,
            Arrival::After {
                index: 0,
                delay: TimeDelta::from_secs(2)
            }
        );
    }

    #[test]
    fn spec_indices_chain() {
        let mut spec = RunSpec::new(plug_home(2), EngineConfig::new(VisibilityModel::Wv));
        let r = Routine::builder("r")
            .set(DeviceId(0), Value::ON, TimeDelta::from_millis(10))
            .build();
        let a = spec.submit(Submission::at(r.clone(), Timestamp::ZERO));
        let b = spec.submit(Submission::after(r, a, TimeDelta::ZERO));
        assert_eq!((a, b), (0, 1));
        assert_eq!(spec.ping_interval, TimeDelta::from_secs(1));
        assert_eq!(spec.detect_timeout, TimeDelta::from_millis(100));
    }
}
