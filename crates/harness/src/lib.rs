//! Simulation harness: the paper's "emulation" (§7.1).
//!
//! Binds the pure SafeHome engine to virtual devices, the ping-based
//! failure detector, a failure-injection plan and a submission schedule,
//! then runs the whole thing to quiescence over the discrete-event queue,
//! producing a [`safehome_types::trace::Trace`] from which every §7.1
//! metric is computed.
//!
//! The harness is deterministic: equal [`RunSpec`]s (including the seed)
//! produce identical traces.
//!
//! The execution logic itself lives in [`runtime::HomeRuntime`], the
//! backend-independent mediation layer shared with the kasa real-time
//! runner: [`runtime::Backend`] abstracts clock + device I/O, and
//! [`sim::SimBackend`] is the discrete-event implementation
//! ([`Driver`] = `HomeRuntime<SimBackend, S>`).
//!
//! Two entry points: [`run`] drives one spec to quiescence and returns
//! its full trace; [`fleet::run_fleet`] spreads many independent homes
//! across worker threads — statically sharded or work-stealing
//! ([`fleet::FleetSchedule`]) — with counters-only sinks for fleet-scale
//! throughput.
//!
//! Pre-run validation: [`sim::Driver::with_sink_checked`] and
//! [`fleet::run_fleet_gated`] accept a caller-supplied gate that inspects
//! each [`RunSpec`] before anything executes (the canonical gate is
//! `safehome-lint`'s Error-severity check, which lives above this crate
//! in the dependency graph). Gating never perturbs an accepted run.
//!
//! Durability: [`sim::Driver::with_journal`] records the append-only
//! execution journal, [`HomeRuntime::crash`] simulates a controller
//! death, and [`journal::recover`] rebuilds the core purely by replay —
//! see [`journal`] for the crash/recovery semantics.

pub mod fleet;
pub mod intra;
pub mod journal;
pub mod runtime;
pub mod service;
pub mod sim;
pub mod spec;

pub use fleet::{
    home_seed, run_fleet, run_fleet_gated, run_fleet_with, FleetResult, FleetSchedule, HomeRun,
    SpecRejection, WorkerStats,
};
pub use intra::{
    build_sub_specs, merge_sub_runs, run_clustered, spec_decomposable, HomePartition, IntraPlanner,
    SubRun, SubRunLog,
};
pub use journal::{recover, InflightWrite, Recovered, RecoveryReport, ReplayBackend};
pub use runtime::{Backend, CommandOutcome, HomeRuntime, HomeTables, Polled, RuntimeCore, Step};
pub use service::{run_service, run_service_with, EvictionPolicy, ServiceConfig, ServiceResult};
pub use sim::{home_pool_stats, run, Driver, HomePoolStats, RunOutput, SimBackend};
pub use spec::{Arrival, RunSpec, Submission};
