//! Simulation harness: the paper's "emulation" (§7.1).
//!
//! Binds the pure SafeHome engine to virtual devices, the ping-based
//! failure detector, a failure-injection plan and a submission schedule,
//! then runs the whole thing to quiescence over the discrete-event queue,
//! producing a [`safehome_types::trace::Trace`] from which every §7.1
//! metric is computed.
//!
//! The harness is deterministic: equal [`RunSpec`]s (including the seed)
//! produce identical traces.
//!
//! Two entry points: [`run`] drives one spec to quiescence and returns
//! its full trace; [`fleet::run_fleet`] spreads many independent homes
//! across worker threads — statically sharded or work-stealing
//! ([`fleet::FleetSchedule`]) — with counters-only sinks for fleet-scale
//! throughput.

pub mod fleet;
pub mod sim;
pub mod spec;

pub use fleet::{
    home_seed, run_fleet, run_fleet_with, FleetResult, FleetSchedule, HomeRun, WorkerStats,
};
pub use sim::{run, Driver, RunOutput, Step};
pub use spec::{Arrival, RunSpec, Submission};
