//! Sharded multi-home fleet driver.
//!
//! Each home's engine is fully independent state (the home is the natural
//! sharding unit), so fleet-scale throughput is embarrassingly parallel:
//! [`run_fleet`] statically shards `homes` independent runs across worker
//! threads, each with its own [`Driver`], event queue and counters-only
//! sink, and collects per-home results over an `mpsc` channel.
//!
//! Determinism: a home's seed is derived only from the fleet seed and the
//! home index ([`home_seed`]), and homes never share mutable state, so
//! per-home results are byte-identical regardless of the worker-thread
//! count.

use std::sync::mpsc;

use safehome_types::sink::{self, RunCounters};

use crate::sim::Driver;
use crate::spec::RunSpec;

/// Derives the seed for one home of a fleet (SplitMix64 over the fleet
/// seed and the home index). Stable across worker counts and releases of
/// the sharding policy.
pub fn home_seed(fleet_seed: u64, home: u64) -> u64 {
    let mut x = fleet_seed ^ home.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Result of one home's run within a fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct HomeRun {
    /// The home's index in the fleet.
    pub home: usize,
    /// The home's derived seed.
    pub seed: u64,
    /// `true` when the run reached quiescence.
    pub completed: bool,
    /// The run's counters (outcomes, latencies, congruence, digest).
    pub counters: RunCounters,
}

/// Aggregated result of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Per-home results, sorted by home index.
    pub homes: Vec<HomeRun>,
    /// Worker threads used.
    pub workers: usize,
}

impl FleetResult {
    /// Total committed routines across the fleet.
    pub fn committed(&self) -> u64 {
        self.homes.iter().map(|h| h.counters.committed).sum()
    }

    /// Total aborted routines across the fleet.
    pub fn aborted(&self) -> u64 {
        self.homes.iter().map(|h| h.counters.aborted).sum()
    }

    /// `true` when every home reached quiescence.
    pub fn all_completed(&self) -> bool {
        self.homes.iter().all(|h| h.completed)
    }

    /// Homes whose end states were congruent with their committed view.
    pub fn congruent_homes(&self) -> usize {
        self.homes.iter().filter(|h| h.counters.congruent).count()
    }

    /// Order-sensitive digest over the per-home digests (in home order);
    /// equal fleets produce equal digests regardless of worker count.
    pub fn digest(&self) -> u64 {
        self.homes.iter().fold(sink::DIGEST_SEED, |acc, h| {
            sink::fold_digest(acc, h.counters.digest)
        })
    }

    /// Every routine latency in the fleet, in milliseconds, sorted.
    pub fn latencies_ms(&self) -> Vec<u64> {
        let mut all: Vec<u64> = self
            .homes
            .iter()
            .flat_map(|h| h.counters.latencies_ms.iter().copied())
            .collect();
        all.sort_unstable();
        all
    }
}

/// Runs `homes` independent homes across `workers` threads.
///
/// `make_spec(home, seed)` builds home `home`'s spec from its derived
/// seed; it runs on the worker threads, so it must be `Sync`. Homes are
/// sharded round-robin (home `i` runs on worker `i % workers`); results
/// return over an `mpsc` channel and are re-sorted by home index.
pub fn run_fleet<F>(homes: usize, workers: usize, fleet_seed: u64, make_spec: F) -> FleetResult
where
    F: Fn(usize, u64) -> RunSpec + Sync,
{
    let workers = workers.clamp(1, homes.max(1));
    let (tx, rx) = mpsc::channel::<HomeRun>();
    let make_spec = &make_spec;
    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            scope.spawn(move || {
                for home in (w..homes).step_by(workers) {
                    let seed = home_seed(fleet_seed, home as u64);
                    let spec = make_spec(home, seed);
                    let mut driver = Driver::with_sink(&spec, RunCounters::new());
                    let completed = driver.run_to_quiescence();
                    let (counters, _, _) = driver.into_output();
                    let _ = tx.send(HomeRun {
                        home,
                        seed,
                        completed,
                        counters,
                    });
                }
            });
        }
        drop(tx);
        let mut results: Vec<HomeRun> = rx.iter().collect();
        results.sort_by_key(|h| h.home);
        FleetResult {
            homes: results,
            workers,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Submission;
    use safehome_core::{EngineConfig, VisibilityModel};
    use safehome_devices::catalog::plug_home;
    use safehome_sim::SimRng;
    use safehome_types::{DeviceId, Routine, TimeDelta, Timestamp, Value};

    /// A small per-home workload whose shape depends on the seed.
    fn tiny_home(_: usize, seed: u64) -> RunSpec {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut spec =
            RunSpec::new(plug_home(4), EngineConfig::new(VisibilityModel::ev())).with_seed(seed);
        let n = 2 + (rng.next_u64() % 3) as usize;
        for i in 0..n {
            let mut b = Routine::builder(format!("r{i}"));
            for j in 0..2u32 {
                b = b.set(
                    DeviceId((i as u32 + j) % 4),
                    Value::ON,
                    TimeDelta::from_millis(50),
                );
            }
            spec.submit(Submission::at(
                b.build(),
                Timestamp::from_millis(rng.next_u64() % 500),
            ));
        }
        spec
    }

    #[test]
    fn fleet_results_are_identical_across_worker_counts() {
        let base = run_fleet(9, 1, 42, tiny_home);
        assert_eq!(base.homes.len(), 9);
        assert!(base.all_completed());
        for workers in [2, 3, 4] {
            let other = run_fleet(9, workers, 42, tiny_home);
            assert_eq!(
                base.homes, other.homes,
                "per-home results must not depend on sharding ({workers} workers)"
            );
            assert_eq!(base.digest(), other.digest());
        }
    }

    #[test]
    fn different_fleet_seeds_give_different_fleets() {
        let a = run_fleet(4, 2, 1, tiny_home);
        let b = run_fleet(4, 2, 2, tiny_home);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn home_seeds_are_distinct_and_stable() {
        let s: Vec<u64> = (0..100).map(|i| home_seed(7, i)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 100, "seed derivation must not collide");
        assert_eq!(home_seed(7, 0), home_seed(7, 0));
    }

    #[test]
    fn aggregates_sum_over_homes() {
        let fleet = run_fleet(5, 2, 11, tiny_home);
        let committed: u64 = fleet.homes.iter().map(|h| h.counters.committed).sum();
        assert_eq!(fleet.committed(), committed);
        assert!(committed > 0);
        assert_eq!(fleet.aborted(), 0);
        assert_eq!(fleet.congruent_homes(), 5);
        assert_eq!(
            fleet.latencies_ms().len() as u64,
            committed,
            "every committed routine contributes one latency"
        );
        // Workers above the home count are clamped.
        let tiny = run_fleet(2, 16, 11, tiny_home);
        assert_eq!(tiny.workers, 2);
    }
}
