//! Sharded multi-home fleet driver.
//!
//! Each home's engine is fully independent state (the home is the natural
//! sharding unit), so fleet-scale throughput is embarrassingly parallel:
//! [`run_fleet`] spreads `homes` independent runs across worker threads,
//! each with its own [`Driver`], event queue and counters-only sink, and
//! collects per-home results over an `mpsc` channel.
//!
//! Two schedules ([`FleetSchedule`]):
//!
//! - [`FleetSchedule::Static`] — home `i` runs on worker `i % workers`
//!   (the original round-robin sharding). Optimal when homes cost about
//!   the same; on heterogeneous fleets the worker that drew the
//!   failure-heavy homes (~10× the events of a clean home) finishes long
//!   after the rest have gone idle.
//! - [`FleetSchedule::Stealing`] — the default: a sharded injector of
//!   home indices (one lock-free cursor per worker over a contiguous
//!   range) feeding per-worker LIFO deques, with random-victim stealing
//!   once a worker's own shard runs dry. Built on `std::sync` only.
//!
//! Determinism: a home's seed is derived only from the fleet seed and the
//! home index ([`home_seed`]), and homes never share mutable state, so
//! per-home results are byte-identical regardless of the worker-thread
//! count *and* of the schedule — which worker runs a home changes
//! nothing about the home. [`FleetResult::worker_stats`] is the only
//! scheduling-dependent output and is excluded from every determinism
//! comparison.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

use safehome_sim::SimRng;
use safehome_types::sink::{self, RunCounters};

use crate::sim::Driver;
use crate::spec::RunSpec;

/// Derives the seed for one home of a fleet (SplitMix64 over the fleet
/// seed and the home index). Stable across worker counts and releases of
/// the sharding policy.
pub fn home_seed(fleet_seed: u64, home: u64) -> u64 {
    let mut x = fleet_seed ^ home.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// How homes are assigned to worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FleetSchedule {
    /// Round-robin: home `i` runs on worker `i % workers`.
    Static,
    /// Work stealing: per-worker shard cursors + LIFO deques with
    /// random-victim stealing. The default.
    #[default]
    Stealing,
}

/// Per-worker scheduling statistics. Scheduling-dependent (unlike the
/// per-home results), so informational only: never compare these across
/// runs. Shared with the resident service runner, whose unit of work is
/// the epoch slice rather than the whole home.
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Homes this worker ran (batch fleet: ran to quiescence; service:
    /// observed finishing on this worker).
    pub homes_run: usize,
    /// Successful steals: batches taken from another worker's shard
    /// cursor or deque (batch fleet), or slices popped from a victim
    /// shard's wheel (service). Always 0 under [`FleetSchedule::Static`]
    /// and with service stealing off.
    pub steals: u64,
    /// Epoch slices this worker executed. Always 0 for the batch fleet
    /// driver, which has no slicing.
    pub slices_run: u64,
}

/// Result of one home's run within a fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct HomeRun {
    /// The home's index in the fleet.
    pub home: usize,
    /// The home's derived seed.
    pub seed: u64,
    /// `true` when the run reached quiescence.
    pub completed: bool,
    /// The run's counters (outcomes, latencies, congruence, digest).
    pub counters: RunCounters,
}

/// Aggregated result of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Per-home results, sorted by home index.
    pub homes: Vec<HomeRun>,
    /// Worker threads used.
    pub workers: usize,
    /// The schedule that produced this result.
    pub schedule: FleetSchedule,
    /// Per-worker scheduling statistics (informational; see
    /// [`WorkerStats`]).
    pub worker_stats: Vec<WorkerStats>,
}

impl FleetResult {
    /// Total committed routines across the fleet.
    pub fn committed(&self) -> u64 {
        self.homes.iter().map(|h| h.counters.committed).sum()
    }

    /// Total aborted routines across the fleet.
    pub fn aborted(&self) -> u64 {
        self.homes.iter().map(|h| h.counters.aborted).sum()
    }

    /// `true` when every home reached quiescence.
    pub fn all_completed(&self) -> bool {
        self.homes.iter().all(|h| h.completed)
    }

    /// Homes whose end states were congruent with their committed view.
    pub fn congruent_homes(&self) -> usize {
        self.homes.iter().filter(|h| h.counters.congruent).count()
    }

    /// Order-sensitive digest over the per-home digests (in home order);
    /// equal fleets produce equal digests regardless of worker count.
    pub fn digest(&self) -> u64 {
        self.homes.iter().fold(sink::DIGEST_SEED, |acc, h| {
            sink::fold_digest(acc, h.counters.digest)
        })
    }

    /// Every routine latency in the fleet, in milliseconds, sorted.
    pub fn latencies_ms(&self) -> Vec<u64> {
        let mut all: Vec<u64> = self
            .homes
            .iter()
            .flat_map(|h| h.counters.latencies_ms.iter().copied())
            .collect();
        all.sort_unstable();
        all
    }
}

/// Runs one home of the fleet to quiescence on the calling thread.
fn run_home<F>(home: usize, fleet_seed: u64, make_spec: &F) -> HomeRun
where
    F: Fn(usize, u64) -> RunSpec + Sync,
{
    let seed = home_seed(fleet_seed, home as u64);
    let spec = make_spec(home, seed);
    let mut driver = Driver::with_sink(&spec, RunCounters::new());
    let completed = driver.run_to_quiescence();
    let (counters, _, _) = driver.into_output();
    HomeRun {
        home,
        seed,
        completed,
        counters,
    }
}

/// One worker's contiguous slice of the home-index injector: a lock-free
/// cursor over `[next, end)`. The owner claims batches in index order;
/// thieves claim from it exactly the same way once their own shard runs
/// dry.
struct Shard {
    next: AtomicUsize,
    end: usize,
}

impl Shard {
    /// Claims up to `batch` consecutive home indices, or `None` when the
    /// shard is exhausted.
    fn claim(&self, batch: usize) -> Option<std::ops::Range<usize>> {
        let start = self.next.fetch_add(batch, Ordering::Relaxed);
        if start >= self.end {
            return None;
        }
        Some(start..(start + batch).min(self.end))
    }
}

/// Runs `homes` independent homes across `workers` threads under the
/// default [`FleetSchedule::Stealing`] schedule.
///
/// `make_spec(home, seed)` builds home `home`'s spec from its derived
/// seed; it runs on the worker threads, so it must be `Sync`. Results
/// return over an `mpsc` channel and are re-sorted by home index.
pub fn run_fleet<F>(homes: usize, workers: usize, fleet_seed: u64, make_spec: F) -> FleetResult
where
    F: Fn(usize, u64) -> RunSpec + Sync,
{
    run_fleet_with(
        homes,
        workers,
        fleet_seed,
        FleetSchedule::default(),
        make_spec,
    )
}

/// A spec the pre-run gate refused: which home, its derived seed, and
/// the gate's message (for `safehome-lint` gates, the rendered
/// Error-severity diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecRejection {
    /// The rejected home's fleet index.
    pub home: usize,
    /// The rejected home's derived seed.
    pub seed: u64,
    /// The gate's explanation.
    pub message: String,
}

impl std::fmt::Display for SpecRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "home {} (seed {:#018x}) rejected: {}",
            self.home, self.seed, self.message
        )
    }
}

/// [`run_fleet_with`] behind a pre-run spec gate: every home's spec is
/// validated (serially, in home order) *before* any home executes, and
/// the first rejection aborts the whole fleet with nothing run. The
/// canonical gate is `safehome-lint`'s Error-severity check
/// (`|_, spec| lint::check(spec)`); the harness stays lint-agnostic
/// because the lint crate sits above it in the dependency graph.
///
/// Gating never perturbs execution: an accepted fleet's per-home results
/// — digests included — are byte-identical to the ungated
/// [`run_fleet_with`] (specs are rebuilt from the same seeds, and the
/// gate only reads them).
pub fn run_fleet_gated<F, G>(
    homes: usize,
    workers: usize,
    fleet_seed: u64,
    schedule: FleetSchedule,
    gate: G,
    make_spec: F,
) -> Result<FleetResult, SpecRejection>
where
    F: Fn(usize, u64) -> RunSpec + Sync,
    G: Fn(usize, &RunSpec) -> Result<(), String>,
{
    for home in 0..homes {
        let seed = home_seed(fleet_seed, home as u64);
        let spec = make_spec(home, seed);
        gate(home, &spec).map_err(|message| SpecRejection {
            home,
            seed,
            message,
        })?;
    }
    Ok(run_fleet_with(
        homes, workers, fleet_seed, schedule, make_spec,
    ))
}

/// [`run_fleet`] with an explicit schedule. `Static` and `Stealing`
/// produce byte-identical [`FleetResult::homes`] — the schedule only
/// decides which worker runs which home, never what a home does.
pub fn run_fleet_with<F>(
    homes: usize,
    workers: usize,
    fleet_seed: u64,
    schedule: FleetSchedule,
    make_spec: F,
) -> FleetResult
where
    F: Fn(usize, u64) -> RunSpec + Sync,
{
    let workers = workers.clamp(1, homes.max(1));
    let (tx, rx) = mpsc::channel::<HomeRun>();
    let make_spec = &make_spec;

    // Batches claimed from a shard cursor: big enough to amortize the
    // claim, small enough that the tail of a shard stays stealable.
    let batch = (homes / (workers * 8).max(1)).clamp(1, 32);
    let shards: Vec<Shard> = (0..workers)
        .map(|w| {
            // Contiguous near-equal split of 0..homes.
            let lo = w * homes / workers;
            let hi = (w + 1) * homes / workers;
            Shard {
                next: AtomicUsize::new(lo),
                end: hi,
            }
        })
        .collect();
    let deques: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    let shards = &shards;
    let deques = &deques;

    let worker_stats = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let tx = tx.clone();
                scope.spawn(move || {
                    let mut stats = WorkerStats::default();
                    match schedule {
                        FleetSchedule::Static => {
                            for home in (w..homes).step_by(workers) {
                                let _ = tx.send(run_home(home, fleet_seed, make_spec));
                                stats.homes_run += 1;
                            }
                        }
                        FleetSchedule::Stealing => {
                            steal_loop(
                                w, workers, batch, fleet_seed, shards, deques, &tx, make_spec,
                                &mut stats,
                            );
                        }
                    }
                    stats
                })
            })
            .collect();
        drop(tx);
        handles
            .into_iter()
            .map(|h| h.join().expect("fleet worker panicked"))
            .collect::<Vec<WorkerStats>>()
    });
    let mut results: Vec<HomeRun> = rx.iter().collect();
    results.sort_by_key(|h| h.home);
    FleetResult {
        homes: results,
        workers,
        schedule,
        worker_stats,
    }
}

/// The work-stealing worker loop: own deque (LIFO) → own shard cursor →
/// victims in pseudo-random rotation (their shard cursor, then half their
/// deque from the FIFO end). Exits when a full sweep finds no work: homes
/// never spawn homes, so once every shard and deque is empty the only
/// remaining work is the at-most-one home each worker already holds in
/// hand. (A thief can race a claimed-but-not-yet-queued batch and exit a
/// moment early; the owner still runs that batch, so no work is lost.)
#[allow(clippy::too_many_arguments)]
fn steal_loop<F>(
    w: usize,
    workers: usize,
    batch: usize,
    fleet_seed: u64,
    shards: &[Shard],
    deques: &[Mutex<VecDeque<usize>>],
    tx: &mpsc::Sender<HomeRun>,
    make_spec: &F,
    stats: &mut WorkerStats,
) where
    F: Fn(usize, u64) -> RunSpec + Sync,
{
    // Victim order only shapes scheduling, never results; seed it off the
    // fleet seed and worker index so runs are reproducible under a
    // deterministic thread interleaving too.
    let mut rng = SimRng::seed_from_u64(fleet_seed ^ (w as u64).wrapping_mul(0xA55));
    loop {
        // 1. Own deque, LIFO end (best locality with freshly queued work).
        let local = deques[w].lock().expect("deque poisoned").pop_back();
        if let Some(home) = local {
            let _ = tx.send(run_home(home, fleet_seed, make_spec));
            stats.homes_run += 1;
            continue;
        }
        // 2. Own shard cursor: run the first claimed home, queue the rest.
        if let Some(range) = shards[w].claim(batch) {
            let mut it = range;
            let first = it.next().expect("claimed range is non-empty");
            if !it.is_empty() {
                deques[w].lock().expect("deque poisoned").extend(it);
            }
            let _ = tx.send(run_home(first, fleet_seed, make_spec));
            stats.homes_run += 1;
            continue;
        }
        // 3. Steal: sweep every victim exactly once, starting at a
        // random one — the rotation runs over the `workers - 1` non-self
        // offsets, so no victim is ever skipped.
        let r = if workers > 1 {
            rng.index(workers - 1)
        } else {
            0
        };
        let mut stolen: Option<Vec<usize>> = None;
        for i in 0..workers.saturating_sub(1) {
            let v = (w + 1 + (r + i) % (workers - 1)) % workers;
            if let Some(range) = shards[v].claim(batch) {
                stolen = Some(range.collect());
                break;
            }
            let mut dq = deques[v].lock().expect("deque poisoned");
            let take = dq.len().div_ceil(2);
            if take > 0 {
                // Steal from the FIFO end — the owner keeps the LIFO end.
                stolen = Some(dq.drain(..take).collect());
                break;
            }
        }
        let Some(grabbed) = stolen else {
            return; // Injector drained and every deque empty.
        };
        stats.steals += 1;
        if grabbed.len() > 1 {
            deques[w]
                .lock()
                .expect("deque poisoned")
                .extend(&grabbed[1..]);
        }
        let _ = tx.send(run_home(grabbed[0], fleet_seed, make_spec));
        stats.homes_run += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Submission;
    use safehome_core::{EngineConfig, VisibilityModel};
    use safehome_devices::catalog::plug_home;
    use safehome_sim::SimRng;
    use safehome_types::{DeviceId, Routine, TimeDelta, Timestamp, Value};

    /// A small per-home workload whose shape depends on the seed.
    fn tiny_home(_: usize, seed: u64) -> RunSpec {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut spec =
            RunSpec::new(plug_home(4), EngineConfig::new(VisibilityModel::ev())).with_seed(seed);
        let n = 2 + (rng.next_u64() % 3) as usize;
        for i in 0..n {
            let mut b = Routine::builder(format!("r{i}"));
            for j in 0..2u32 {
                b = b.set(
                    DeviceId((i as u32 + j) % 4),
                    Value::ON,
                    TimeDelta::from_millis(50),
                );
            }
            spec.submit(Submission::at(
                b.build(),
                Timestamp::from_millis(rng.next_u64() % 500),
            ));
        }
        spec
    }

    #[test]
    fn fleet_results_are_identical_across_worker_counts() {
        let base = run_fleet(9, 1, 42, tiny_home);
        assert_eq!(base.homes.len(), 9);
        assert!(base.all_completed());
        for workers in [2, 3, 4] {
            let other = run_fleet(9, workers, 42, tiny_home);
            assert_eq!(
                base.homes, other.homes,
                "per-home results must not depend on sharding ({workers} workers)"
            );
            assert_eq!(base.digest(), other.digest());
        }
    }

    #[test]
    fn different_fleet_seeds_give_different_fleets() {
        let a = run_fleet(4, 2, 1, tiny_home);
        let b = run_fleet(4, 2, 2, tiny_home);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn home_seeds_are_distinct_and_stable() {
        let s: Vec<u64> = (0..100).map(|i| home_seed(7, i)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 100, "seed derivation must not collide");
        assert_eq!(home_seed(7, 0), home_seed(7, 0));
    }

    #[test]
    fn stealing_matches_static_per_home_and_digest() {
        let reference = run_fleet_with(13, 1, 77, FleetSchedule::Static, tiny_home);
        assert!(reference.all_completed());
        for schedule in [FleetSchedule::Static, FleetSchedule::Stealing] {
            for workers in [1, 2, 3, 4, 13] {
                let other = run_fleet_with(13, workers, 77, schedule, tiny_home);
                assert_eq!(
                    reference.homes, other.homes,
                    "{schedule:?} at {workers} workers must match the static single-thread run"
                );
                assert_eq!(reference.digest(), other.digest());
                assert_eq!(other.schedule, schedule);
                assert_eq!(
                    other
                        .worker_stats
                        .iter()
                        .map(|s| s.homes_run)
                        .sum::<usize>(),
                    13,
                    "every home is run exactly once ({schedule:?}, {workers} workers)"
                );
            }
        }
    }

    #[test]
    fn static_schedule_never_steals() {
        let fleet = run_fleet_with(8, 4, 3, FleetSchedule::Static, tiny_home);
        assert!(fleet.worker_stats.iter().all(|s| s.steals == 0));
        // Round-robin: every worker gets exactly its stride share.
        assert!(fleet.worker_stats.iter().all(|s| s.homes_run == 2));
    }

    #[test]
    fn empty_fleet_is_fine_under_both_schedules() {
        for schedule in [FleetSchedule::Static, FleetSchedule::Stealing] {
            let fleet = run_fleet_with(0, 4, 1, schedule, tiny_home);
            assert!(fleet.homes.is_empty());
            assert_eq!(fleet.workers, 1, "workers clamp to at least one");
            assert!(fleet.all_completed(), "vacuously true");
        }
    }

    #[test]
    fn gated_fleet_matches_ungated_when_gate_accepts() {
        let plain = run_fleet_with(9, 2, 42, FleetSchedule::Stealing, tiny_home);
        let gated_specs = std::sync::atomic::AtomicUsize::new(0);
        let gated = run_fleet_gated(
            9,
            2,
            42,
            FleetSchedule::Stealing,
            |_, spec| {
                gated_specs.fetch_add(spec.submissions.len(), std::sync::atomic::Ordering::Relaxed);
                Ok(())
            },
            tiny_home,
        )
        .expect("accepting gate never rejects");
        assert_eq!(plain.homes, gated.homes, "gating must not perturb runs");
        assert_eq!(plain.digest(), gated.digest());
        assert!(
            gated_specs.load(std::sync::atomic::Ordering::Relaxed) > 0,
            "the gate saw every spec"
        );
    }

    #[test]
    fn gated_fleet_rejects_with_home_and_seed() {
        let err = run_fleet_gated(
            5,
            2,
            42,
            FleetSchedule::Static,
            |home, _| {
                if home == 3 {
                    Err("synthetic gate failure".into())
                } else {
                    Ok(())
                }
            },
            tiny_home,
        )
        .expect_err("home 3 is rejected");
        assert_eq!(err.home, 3);
        assert_eq!(err.seed, home_seed(42, 3));
        assert!(err.message.contains("synthetic"));
        assert!(err.to_string().contains("home 3"));
    }

    #[test]
    fn aggregates_sum_over_homes() {
        let fleet = run_fleet(5, 2, 11, tiny_home);
        let committed: u64 = fleet.homes.iter().map(|h| h.counters.committed).sum();
        assert_eq!(fleet.committed(), committed);
        assert!(committed > 0);
        assert_eq!(fleet.aborted(), 0);
        assert_eq!(fleet.congruent_homes(), 5);
        assert_eq!(
            fleet.latencies_ms().len() as u64,
            committed,
            "every committed routine contributes one latency"
        );
        // Workers above the home count are clamped.
        let tiny = run_fleet(2, 16, 11, tiny_home);
        assert_eq!(tiny.workers, 2);
    }
}
