//! The discrete-event backend and run driver.
//!
//! [`SimBackend`] is the virtual-time [`Backend`]: a calendar-wheel
//! [`EventQueue`], a vec of [`VirtualDevice`]s, the ping-based
//! [`FailureDetector`] and the seeded latency RNG. [`Driver`] is the
//! [`HomeRuntime`] over it — the same mediation layer the kasa real-time
//! runner uses — reporting everything that happens to a pluggable
//! [`TraceSink`]. The full [`Trace`] recorder is the default sink;
//! fleet-scale callers plug in [`safehome_types::sink::RunCounters`] to
//! keep the hot loop free of per-event allocation. [`run`] is the
//! one-shot convenience wrapper that drives a spec to quiescence and
//! returns its full trace.

use std::cell::RefCell;
use std::collections::BTreeMap;

use safehome_core::journal::{ExecutionJournal, JournalWriter};
use safehome_core::{Engine, TimerId};
use safehome_devices::{DeviceEvent, DispatchTicket, FailureDetector, Health, VirtualDevice};
use safehome_sim::{EventQueue, SimRng};
use safehome_types::{sink::TraceSink, trace::Trace, DeviceId, TimeDelta, Timestamp, Value};

use crate::runtime::{Backend, CommandOutcome, HomeRuntime, HomeTables, Polled, RuntimeCore};
use crate::spec::RunSpec;

pub use crate::runtime::Step;

/// Result of one simulated run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The complete execution trace.
    pub trace: Trace,
    /// `false` if the run hit the safety horizon before quiescence (a
    /// deadlock or an unsatisfiable submission dependency).
    pub completed: bool,
    /// The engine's committed device states at the end.
    pub committed_states: BTreeMap<DeviceId, Value>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Submit(usize),
    /// A dispatched command arrives at its device after network latency;
    /// independent per-call latency is what lets concurrent routines race
    /// at the devices (the source of Fig. 1's incongruence under WV).
    DeviceArrive(DeviceId, DispatchTicket),
    DeviceComplete(DeviceId),
    InjectFail(DeviceId),
    InjectRestart(DeviceId),
    Probe(DeviceId),
    ProbeTimeout(DeviceId),
    EngineTimer(TimerId),
}

fn is_material(ev: &Ev) -> bool {
    !matches!(ev, Ev::Probe(_) | Ev::ProbeTimeout(_))
}

/// Provenance of one funnel-scheduled event (see [`FunnelEntry`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FunnelParent {
    /// Scheduled while the driver was being constructed — the `rank`-th
    /// funnel call before the first pop (an absolute-arrival submission).
    Init {
        /// Construction-time call rank.
        rank: u32,
    },
    /// Scheduled while handling pop `pop` — the `rank`-th funnel call of
    /// that pop's handler.
    Pop {
        /// Index of the causing pop.
        pop: u32,
        /// Call rank within that pop's handler.
        rank: u32,
    },
}

/// One record of the sub-run funnel log: every event a traced backend
/// schedules through its `SimBackend::schedule` funnel, with the
/// effective enqueue time (arrival clamped forward to the clock, exactly
/// as the queue does) and the pop that caused it. Because the queue pops
/// in (time, insertion) order and — on a failure-free, probe-free spec —
/// every event passes through the funnel, a stable sort of the log by
/// `t_eff` *is* the pop order, and the parent links let the intra-home
/// merge reconstruct the sequential interleaving across clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunnelEntry {
    /// Effective enqueue time: `max(at, clock)`.
    pub t_eff: Timestamp,
    /// The construction rank or pop that scheduled this event.
    pub parent: FunnelParent,
}

/// Funnel-log state of a traced backend (intra-home sub-runs only).
#[derive(Debug, Default)]
struct SubTrace {
    log: Vec<FunnelEntry>,
    /// Pops handled so far; `None` current pop means construction.
    current: Option<u32>,
    pops: u32,
    /// Funnel calls made in the current context.
    rank: u32,
}

/// One recyclable bundle of per-home state: the event queue's
/// bucket/deque storage, the virtual device vec (each device keeps its
/// pending-dispatch deque), and the runtime's submission tables.
#[derive(Default)]
struct PooledHome {
    queue: EventQueue<Ev>,
    devices: Vec<VirtualDevice>,
    tables: HomeTables,
}

thread_local! {
    /// The per-thread home-state pool: a fleet worker runs thousands of
    /// homes on one thread, and recycling the queue, device and table
    /// storage keeps the per-home setup free of allocation (the PR 4
    /// queue-pool lever extended to all per-home state). Reuse never
    /// changes results — a recycled home is indistinguishable from a
    /// fresh one (every container is reset field-by-field).
    static HOME_POOL: RefCell<Vec<PooledHome>> = const { RefCell::new(Vec::new()) };
}

/// Bundles kept per thread; one suffices per worker, a few cover nested
/// driver use in tests.
const HOME_POOL_CAP: usize = 4;

fn pooled_home() -> PooledHome {
    HOME_POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default()
}

impl PooledHome {
    /// Approximate heap footprint of one pooled bundle: the dominant
    /// retained allocations (queue buckets/deques and device slots).
    /// Table vectors are small by comparison and not chased.
    fn approx_bytes(&self) -> usize {
        self.queue.approx_bytes() + self.devices.capacity() * std::mem::size_of::<VirtualDevice>()
    }
}

/// Point-in-time accounting for the calling thread's home-state pool.
///
/// The per-home resident footprint is dominated by exactly what the pool
/// recycles — the calendar-wheel bucket arrays and the device slots — so
/// `approx_bytes / bundles.max(1)` doubles as the service runner's
/// estimate of what one *resident* home pins versus one evicted home
/// (journal + device values + RNG).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HomePoolStats {
    /// Recycled bundles currently parked in the pool.
    pub bundles: usize,
    /// Approximate retained bytes across those bundles.
    pub approx_bytes: usize,
}

/// Stats for the calling thread's home-state pool (see [`HomePoolStats`]).
pub fn home_pool_stats() -> HomePoolStats {
    HOME_POOL.with(|p| {
        let pool = p.borrow();
        HomePoolStats {
            bundles: pool.len(),
            approx_bytes: pool.iter().map(PooledHome::approx_bytes).sum(),
        }
    })
}

fn recycle_home(mut home: PooledHome) {
    home.queue.clear();
    HOME_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < HOME_POOL_CAP {
            pool.push(home);
        }
    });
}

/// The discrete-event [`Backend`]: virtual clock and devices.
///
/// Owns everything timing- and I/O-shaped about a simulated run — the
/// event queue, the virtual devices, the failure plan's injections, the
/// probe loops and the latency RNG — and feeds the backend-independent
/// [`RuntimeCore`] exactly the way the paper's emulation (§7.1) demands.
pub struct SimBackend<'a> {
    spec: &'a RunSpec,
    queue: EventQueue<Ev>,
    devices: Vec<VirtualDevice>,
    detector: FailureDetector,
    rng: SimRng,
    latency: safehome_devices::LatencyModel,
    /// Outstanding material (non-probe) events.
    material: usize,
    /// Outstanding material events that are *not* future workload
    /// submissions — device arrivals/completions, injections, engine
    /// timers. Zero means the queue holds nothing but `Submit`s (plus
    /// possibly immaterial probes): the world is at rest, and the
    /// service runner may park the home's state behind its journal.
    nonsubmit_material: usize,
    /// Funnel logging for intra-home sub-runs; `None` (the default)
    /// costs one branch per schedule call.
    subtrace: Option<SubTrace>,
}

impl<'a> SimBackend<'a> {
    fn new(spec: &'a RunSpec, pooled: &mut PooledHome) -> Self {
        let n = spec.home.len();
        // Reuse pooled device slots in place (each keeps its pending
        // deque allocation); grow with fresh ones as needed.
        let mut devices = std::mem::take(&mut pooled.devices);
        for (i, d) in spec.home.devices().iter().enumerate() {
            if let Some(slot) = devices.get_mut(i) {
                slot.reset(d.initial, TimeDelta::ZERO, spec.detect_timeout);
            } else {
                devices.push(VirtualDevice::new(
                    d.initial,
                    TimeDelta::ZERO,
                    spec.detect_timeout,
                ));
            }
        }
        devices.truncate(n);
        SimBackend {
            spec,
            queue: std::mem::take(&mut pooled.queue),
            devices,
            detector: FailureDetector::new(n, spec.ping_interval, spec.detect_timeout),
            rng: SimRng::seed_from_u64(spec.seed),
            latency: spec.latency,
            material: 0,
            nonsubmit_material: 0,
            subtrace: None,
        }
    }

    /// A bare backend over fresh per-home state: the "process restart"
    /// world for [`crate::journal`]'s redrive path — devices back at
    /// their spec initial states, nothing scheduled (in particular the
    /// failure plan is *not* re-injected; its past belongs to the
    /// crashed run). The sim's crash/restore injection reuses the
    /// *surviving* backend instead (see
    /// [`crate::runtime::HomeRuntime::crash`]).
    pub fn fresh(spec: &'a RunSpec) -> Self {
        Self::new(spec, &mut PooledHome::default())
    }

    /// Schedules the failure plan's injections and the detector's probe
    /// loops. Called *after* the runtime scheduled the workload, so
    /// same-instant FIFO tie-breaks (submission before injection) match
    /// the original driver event-for-event.
    fn schedule_plan(&mut self) {
        let spec = self.spec;
        // Schedule ground-truth failures and the detector's probe loops.
        for ev in spec.failures.sorted_events() {
            let kind = if ev.is_failure {
                Ev::InjectFail(ev.device)
            } else {
                Ev::InjectRestart(ev.device)
            };
            self.schedule(ev.at, kind);
        }
        // Probes exist to detect health transitions, and a device the
        // failure plan never touches can never have one — every probe of
        // an always-healthy device is a no-op for the engine, the trace
        // and the RNG (it acks, re-arms its own deadline, and changes no
        // shared state). Skipping those loops per device drops the
        // dominant event-queue load of failure-injecting runs (≈ devices
        // × horizon / ping-interval events, of which only the plan's
        // devices ever matter) without changing the event stream at all.
        for d in spec.home.ids() {
            if spec.failures.involves(d) {
                let at = self.detector.next_probe_at(d);
                self.queue.schedule(at, Ev::Probe(d)); // probes are immaterial
            }
        }
    }

    fn schedule(&mut self, at: Timestamp, ev: Ev) {
        if is_material(&ev) {
            self.material += 1;
            if !matches!(ev, Ev::Submit(_)) {
                self.nonsubmit_material += 1;
            }
        }
        if let Some(st) = self.subtrace.as_mut() {
            let parent = match st.current {
                None => FunnelParent::Init { rank: st.rank },
                Some(pop) => FunnelParent::Pop { pop, rank: st.rank },
            };
            st.rank += 1;
            st.log.push(FunnelEntry {
                t_eff: at.max(self.queue.now()),
                parent,
            });
        }
        self.queue.schedule(at, ev);
    }

    /// Drains the funnel log of a traced backend (empty for untraced
    /// ones). The intra-home merge calls this once the sub-run is done.
    pub fn take_funnel_log(&mut self) -> Vec<FunnelEntry> {
        self.subtrace
            .as_mut()
            .map(|st| std::mem::take(&mut st.log))
            .unwrap_or_default()
    }

    /// Timestamp of the earliest pending simulation event, if any.
    ///
    /// The resident service runner uses this to park a home between
    /// epochs: a home whose next event lies past the epoch boundary is
    /// re-queued on the timer wheel instead of being stepped. Peeking
    /// never perturbs the queue, so slicing a run at arbitrary epoch
    /// boundaries replays the exact event sequence of an unsliced run.
    pub fn next_event_at(&self) -> Option<Timestamp> {
        self.queue.peek_time()
    }

    /// `true` when every pending material event is a future workload
    /// submission — no device I/O, injections or engine timers in
    /// flight. Together with engine quiescence (and a failure-free,
    /// absolute-arrival spec) this is the service runner's evictability
    /// condition: the journal then captures the whole controller, and
    /// the world reduces to the device states plus the RNG position.
    pub fn only_submits_pending(&self) -> bool {
        self.nonsubmit_material == 0
    }

    /// Approximate heap bytes this backend pins while resident: the
    /// event queue's retained capacity plus the device slots. The
    /// companion durable footprint is the journal's
    /// `ExecutionJournal::approx_bytes`.
    pub fn approx_resident_bytes(&self) -> usize {
        self.queue.approx_bytes() + self.devices.capacity() * std::mem::size_of::<VirtualDevice>()
    }

    /// Tears an evicted backend down to the compact world snapshot the
    /// service runner parks beside the journal — per-device states and
    /// the RNG position — recycling the queue and device storage into
    /// the thread's home pool. Only sound at an eviction point (engine
    /// quiescent, [`Self::only_submits_pending`]): pending submissions
    /// are re-derived from the journal on recovery, and anything else in
    /// the queue would be lost.
    pub fn into_world_snapshot(mut self) -> (Vec<Value>, SimRng) {
        let states = self.devices.iter().map(VirtualDevice::state).collect();
        recycle_home(PooledHome {
            queue: std::mem::take(&mut self.queue),
            devices: std::mem::take(&mut self.devices),
            tables: HomeTables::default(),
        });
        (states, self.rng)
    }

    /// Rebuilds a backend from an eviction-time world snapshot: pooled
    /// storage, device states forced back to `device_states`, the RNG
    /// resumed at its parked position, and — deliberately — *nothing*
    /// scheduled. The recovered core's redrive re-issues the pending
    /// submissions; the failure plan is not re-injected because eviction
    /// requires an empty one.
    pub fn resurrect(spec: &'a RunSpec, device_states: &[Value], rng: SimRng) -> Self {
        let mut pooled = pooled_home();
        let mut backend = SimBackend::new(spec, &mut pooled);
        for (slot, &v) in backend.devices.iter_mut().zip(device_states) {
            slot.force_state(v);
        }
        backend.rng = rng;
        backend
    }
}

impl Backend for SimBackend<'_> {
    fn idle(&self) -> bool {
        self.material == 0
    }

    fn now(&self) -> Timestamp {
        self.queue.now()
    }

    fn dispatch(&mut self, now: Timestamp, device: DeviceId, ticket: DispatchTicket) {
        let net = self.latency.sample(&mut self.rng);
        self.schedule(now + net, Ev::DeviceArrive(device, ticket));
    }

    fn set_timer(&mut self, at: Timestamp, timer: TimerId) {
        self.schedule(at, Ev::EngineTimer(timer));
    }

    fn schedule_submit(&mut self, at: Timestamp, index: usize) {
        self.schedule(at, Ev::Submit(index));
    }

    fn poll<S: TraceSink>(&mut self, core: &mut RuntimeCore<'_, S>) -> Polled {
        let Some((now, ev)) = self.queue.pop() else {
            return Polled::Exhausted;
        };
        if now > core.horizon() {
            // Put the unconsumed event back (its material count was never
            // decremented), so backend state stays consistent and a
            // caller extending the horizon via `set_horizon` resumes
            // instead of silently losing this event. The stalled run
            // records nothing further, so the event stream is unchanged.
            self.queue.schedule(now, ev);
            return Polled::PastHorizon;
        }
        if is_material(&ev) {
            self.material -= 1;
            if !matches!(ev, Ev::Submit(_)) {
                self.nonsubmit_material -= 1;
            }
        }
        if let Some(st) = self.subtrace.as_mut() {
            st.current = Some(st.pops);
            st.pops += 1;
            st.rank = 0;
            core.mark_pop_boundary();
        }
        match ev {
            Ev::Submit(i) => core.submit_indexed(i, now, self),
            Ev::DeviceArrive(d, ticket) => {
                if let Some(at) = self.devices[d.index()].dispatch(ticket, now) {
                    self.schedule(at, Ev::DeviceComplete(d));
                }
            }
            Ev::InjectFail(d) => {
                if let Some(reply_at) = self.devices[d.index()].fail(now) {
                    self.schedule(reply_at, Ev::DeviceComplete(d));
                }
            }
            Ev::InjectRestart(d) => self.devices[d.index()].restart(),
            Ev::DeviceComplete(d) => {
                let (event, next) = self.devices[d.index()].on_completion_timer(now);
                if let Some(at) = next {
                    self.schedule(at, Ev::DeviceComplete(d));
                }
                match event {
                    None => {} // Stale timer (failure moved the reply).
                    Some(DeviceEvent::Completed {
                        ticket,
                        new_state,
                        observed,
                    }) => {
                        let detection = self.detector.on_ack(d, now);
                        core.on_command(
                            now,
                            CommandOutcome {
                                device: d,
                                ticket,
                                success: true,
                                observed,
                                new_state,
                                detection,
                            },
                            self,
                        );
                    }
                    Some(DeviceEvent::Failed { ticket }) => {
                        // A dead command reply is also an implicit
                        // detection: the edge times out on the call.
                        let detection = self.detector.on_timeout(d, now);
                        core.on_command(
                            now,
                            CommandOutcome {
                                device: d,
                                ticket,
                                success: false,
                                observed: None,
                                new_state: None,
                                detection,
                            },
                            self,
                        );
                    }
                }
            }
            Ev::Probe(d) => {
                if !self.detector.probe_due(d, now) {
                    // An implicit ack pushed the deadline; re-arm lazily.
                    let at = self.detector.next_probe_at(d);
                    self.queue.schedule(at, Ev::Probe(d));
                } else if self.devices[d.index()].health() == Health::Up {
                    if let Some(det) = self.detector.on_ack(d, now) {
                        core.emit_detection(det, now, self);
                    }
                    let at = self.detector.next_probe_at(d);
                    self.queue.schedule(at, Ev::Probe(d));
                } else {
                    self.queue
                        .schedule(now + self.spec.detect_timeout, Ev::ProbeTimeout(d));
                }
            }
            Ev::ProbeTimeout(d) => {
                if self.devices[d.index()].health() == Health::Up {
                    // Restarted inside the probe window: counts as an ack.
                    if let Some(det) = self.detector.on_ack(d, now) {
                        core.emit_detection(det, now, self);
                    }
                } else if let Some(det) = self.detector.on_timeout(d, now) {
                    core.emit_detection(det, now, self);
                }
                let at = self.detector.next_probe_at(d);
                self.queue.schedule(at, Ev::Probe(d));
            }
            Ev::EngineTimer(timer) => core.on_timer(timer, now, self),
        }
        Polled::Event(now)
    }

    fn end_states(&mut self) -> BTreeMap<DeviceId, Value> {
        self.spec
            .home
            .ids()
            .map(|d| (d, self.devices[d.index()].state()))
            .collect()
    }

    fn reclaim(&mut self, tables: HomeTables) {
        recycle_home(PooledHome {
            queue: std::mem::take(&mut self.queue),
            devices: std::mem::take(&mut self.devices),
            tables,
        });
    }
}

/// A stepped simulation driver over one [`RunSpec`]: the [`HomeRuntime`]
/// bound to the discrete-event [`SimBackend`].
///
/// Construction schedules the workload, failure plan and detector probe
/// loops; each [`HomeRuntime::step`] pops and processes one event. The
/// driver is deterministic: equal specs (including the seed) produce
/// identical event streams regardless of how stepping is interleaved
/// with inspection.
pub type Driver<'a, S = Trace> = HomeRuntime<'a, SimBackend<'a>, S>;

impl<'a> Driver<'a, Trace> {
    /// A driver recording the full execution trace.
    ///
    /// # Panics
    ///
    /// Panics if a submission references an unknown device (specs are
    /// authored by the workload generators, which validate against the
    /// home).
    pub fn new(spec: &'a RunSpec) -> Self {
        let trace = Trace::new(spec.home.initial_states());
        Driver::with_sink(spec, trace)
    }
}

impl<'a, S: TraceSink> Driver<'a, S> {
    /// A driver reporting to the given sink.
    pub fn with_sink(spec: &'a RunSpec, sink: S) -> Self {
        Self::build(spec, sink, None)
    }

    /// [`Driver::with_sink`] behind a pre-run spec gate: `gate` inspects
    /// the spec *before* any state is built, and a rejection (`Err`)
    /// means no driver — nothing is scheduled, no RNG is drawn, no pooled
    /// state is touched. The canonical gate is `safehome-lint`'s
    /// Error-severity check (`lint::check`), but any validation fits; the
    /// harness stays lint-agnostic because the lint crate sits *above* it
    /// in the dependency graph. Gating never perturbs execution: an
    /// accepted spec runs event-for-event identically to
    /// [`Driver::with_sink`].
    pub fn with_sink_checked<G>(spec: &'a RunSpec, sink: S, gate: G) -> Result<Self, String>
    where
        G: FnOnce(&RunSpec) -> Result<(), String>,
    {
        gate(spec)?;
        Ok(Self::build(spec, sink, None))
    }

    /// A driver that additionally records a durable execution journal
    /// (see [`crate::journal`]). Journaling never touches the sink, so
    /// the event stream — and the per-home digest — is identical to
    /// [`Driver::with_sink`]'s; it only adds the crash/recover ability:
    /// [`HomeRuntime::crash`] at any step boundary yields the journal
    /// plus the surviving backend, `crate::journal::recover` rebuilds the
    /// core, and [`HomeRuntime::resume`] continues the run.
    pub fn with_journal(spec: &'a RunSpec, sink: S) -> Self {
        Self::build(
            spec,
            sink,
            Some(JournalWriter::record(ExecutionJournal::new())),
        )
    }

    /// A driver with funnel logging enabled — the intra-home sub-run
    /// variant. Behaves event-for-event like [`Driver::with_sink`]; in
    /// addition the backend records one [`FunnelEntry`] per scheduled
    /// event (construction included) and the sink sees a
    /// [`TraceSink::pop_boundary`] before every handled pop, which
    /// together let [`crate::intra`] merge sub-runs deterministically.
    pub fn with_sink_traced(spec: &'a RunSpec, sink: S) -> Self {
        Self::build_traced(spec, sink, None, true)
    }

    fn build(spec: &'a RunSpec, sink: S, journal: Option<JournalWriter>) -> Self {
        Self::build_traced(spec, sink, journal, false)
    }

    fn build_traced(
        spec: &'a RunSpec,
        sink: S,
        journal: Option<JournalWriter>,
        traced: bool,
    ) -> Self {
        let mut pooled = pooled_home();
        let mut backend = SimBackend::new(spec, &mut pooled);
        if traced {
            backend.subtrace = Some(SubTrace::default());
        }
        let engine = Engine::new(spec.config.clone(), &spec.home.initial_states());
        let mut driver = HomeRuntime::assemble_journaled(
            engine,
            sink,
            &spec.submissions,
            spec.max_time,
            pooled.tables,
            backend,
            journal,
        );
        // Workload first, then injections and probes: same-instant FIFO
        // tie-breaks must match the pre-refactor driver exactly.
        driver.backend_mut().schedule_plan();
        driver
    }
}

/// Runs a spec to quiescence and returns its full trace.
///
/// # Panics
///
/// Panics if a submission references an unknown device (specs are authored
/// by the workload generators, which validate against the home).
pub fn run(spec: &RunSpec) -> RunOutput {
    let mut driver = Driver::new(spec);
    driver.run_to_quiescence();
    let (trace, committed_states, completed) = driver.into_output();
    RunOutput {
        trace,
        completed,
        committed_states,
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Submission;
    use safehome_core::{EngineConfig, VisibilityModel};
    use safehome_devices::catalog::plug_home;
    use safehome_devices::FailurePlan;
    use safehome_types::sink::RunCounters;
    use safehome_types::trace::{RoutineOutcome, TraceEventKind};
    use safehome_types::Routine;

    fn d(i: u32) -> DeviceId {
        DeviceId(i)
    }

    fn all_models() -> Vec<VisibilityModel> {
        vec![
            VisibilityModel::Wv,
            VisibilityModel::Gsv { strong: false },
            VisibilityModel::Gsv { strong: true },
            VisibilityModel::Psv,
            VisibilityModel::ev(),
            VisibilityModel::Ev {
                scheduler: safehome_core::SchedulerKind::Fcfs,
            },
            VisibilityModel::Ev {
                scheduler: safehome_core::SchedulerKind::Jit,
            },
        ]
    }

    fn simple_routine(devs: &[u32], v: Value) -> Routine {
        let mut b = Routine::builder("r");
        for &i in devs {
            b = b.set(d(i), v, TimeDelta::from_millis(100));
        }
        b.build()
    }

    #[test]
    fn single_routine_completes_under_every_model() {
        for model in all_models() {
            let mut spec = RunSpec::new(plug_home(3), EngineConfig::new(model));
            spec.submit(Submission::at(
                simple_routine(&[0, 1, 2], Value::ON),
                Timestamp::ZERO,
            ));
            let out = run(&spec);
            assert!(out.completed, "{model:?}");
            assert_eq!(out.trace.committed().len(), 1, "{model:?}");
            for i in 0..3 {
                assert_eq!(out.trace.end_states[&d(i)], Value::ON, "{model:?}");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let mut spec =
                RunSpec::new(plug_home(5), EngineConfig::new(VisibilityModel::ev())).with_seed(42);
            for i in 0..5u64 {
                spec.submit(Submission::at(
                    simple_routine(&[(i % 5) as u32, ((i + 1) % 5) as u32], Value::ON),
                    Timestamp::from_millis(i * 30),
                ));
            }
            spec
        };
        let a = run(&mk());
        let b = run(&mk());
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn stepped_driver_matches_one_shot_run() {
        let mk = || {
            let mut spec =
                RunSpec::new(plug_home(4), EngineConfig::new(VisibilityModel::ev())).with_seed(9);
            for i in 0..4u64 {
                spec.submit(Submission::at(
                    simple_routine(&[(i % 4) as u32, ((i + 2) % 4) as u32], Value::ON),
                    Timestamp::from_millis(i * 25),
                ));
            }
            spec
        };
        let one_shot = run(&mk());
        let spec = mk();
        let mut driver = Driver::new(&spec);
        let mut events = 0usize;
        let mut last = Timestamp::ZERO;
        loop {
            match driver.step() {
                Step::Event(at) => {
                    assert!(at >= last, "virtual time went backwards");
                    last = at;
                    events += 1;
                }
                Step::Quiescent => break,
                Step::Stalled => panic!("run stalled"),
                Step::Idle => unreachable!("the simulation backend never idles"),
            }
        }
        assert!(events > 0);
        assert!(driver.is_done());
        // Stepping past the end keeps reporting the terminal state.
        assert_eq!(driver.step(), Step::Quiescent);
        let (trace, committed, completed) = driver.into_output();
        assert!(completed);
        assert_eq!(trace, one_shot.trace);
        assert_eq!(committed, one_shot.committed_states);
    }

    #[test]
    fn counter_sink_matches_full_trace() {
        // The counters-only sink must agree with the full recorder on
        // every aggregate it keeps, including under failures.
        let mk = || {
            let mut spec =
                RunSpec::new(plug_home(6), EngineConfig::new(VisibilityModel::ev())).with_seed(3);
            spec.failures = FailurePlan::none().fail(d(5), Timestamp::from_millis(400));
            for i in 0..6u64 {
                spec.submit(Submission::at(
                    simple_routine(&[(i % 6) as u32, ((i + 1) % 6) as u32], Value::ON),
                    Timestamp::from_millis(i * 200),
                ));
            }
            spec
        };
        let full = run(&mk());
        let spec = mk();
        let mut driver = Driver::with_sink(&spec, RunCounters::new());
        assert!(driver.run_to_quiescence());
        let (counters, committed, _) = driver.into_output();
        assert_eq!(counters.submitted as usize, full.trace.records.len());
        assert_eq!(counters.committed as usize, full.trace.committed().len());
        assert_eq!(counters.aborted as usize, full.trace.aborted().len());
        assert_eq!(counters.end_time, full.trace.end_time());
        let skips: u32 = full
            .trace
            .records
            .values()
            .map(|r| r.best_effort_skipped)
            .sum();
        assert_eq!(counters.best_effort_skipped, skips as u64);
        assert_eq!(
            counters.latencies_ms.len(),
            (counters.committed + counters.aborted) as usize
        );
        assert_eq!(committed, full.committed_states);
        // End-state congruence holds for EV outside the failed device.
        assert!(counters.congruent);
    }

    #[test]
    fn checked_driver_gates_before_building_and_matches_unchecked() {
        let mk = || {
            let mut spec =
                RunSpec::new(plug_home(3), EngineConfig::new(VisibilityModel::ev())).with_seed(7);
            spec.submit(Submission::at(
                simple_routine(&[0, 1, 2], Value::ON),
                Timestamp::ZERO,
            ));
            spec
        };
        // A rejecting gate yields no driver at all.
        let spec = mk();
        let gated =
            Driver::with_sink_checked(&spec, Trace::new(spec.home.initial_states()), |_| {
                Err("nope".into())
            });
        match gated {
            Err(err) => assert_eq!(err, "nope"),
            Ok(_) => panic!("gate must reject"),
        }
        // An accepting gate runs event-for-event like the plain driver.
        let plain = run(&mk());
        let spec = mk();
        let mut driver =
            Driver::with_sink_checked(&spec, Trace::new(spec.home.initial_states()), |s| {
                assert_eq!(s.submissions.len(), 1);
                Ok(())
            })
            .expect("gate accepts");
        driver.run_to_quiescence();
        let (trace, committed, completed) = driver.into_output();
        assert!(completed);
        assert_eq!(trace, plain.trace);
        assert_eq!(committed, plain.committed_states);
    }

    #[test]
    fn chained_submission_waits_for_predecessor() {
        let mut spec = RunSpec::new(plug_home(2), EngineConfig::new(VisibilityModel::ev()));
        let first = spec.submit(Submission::at(
            simple_routine(&[0], Value::ON),
            Timestamp::ZERO,
        ));
        spec.submit(Submission::after(
            simple_routine(&[1], Value::ON),
            first,
            TimeDelta::from_secs(1),
        ));
        let out = run(&spec);
        assert!(out.completed);
        let ids = out.trace.submission_order();
        let r1 = &out.trace.records[&ids[0]];
        let r2 = &out.trace.records[&ids[1]];
        assert_eq!(
            r2.submitted,
            r1.finished.unwrap() + TimeDelta::from_secs(1),
            "dependent submitted exactly one second after predecessor"
        );
    }

    #[test]
    fn deferred_routine_released_at_quiescence_instant_still_runs() {
        // Regression for the unified quiescence bookkeeping: when the
        // predecessor's commit is the last material event, the zero-delay
        // dependent is released at the very instant the engine quiesces —
        // the runtime must schedule it (and count it as outstanding
        // backend work) before the next step's quiescence check, or the
        // run would end with the dependent never submitted. The kasa
        // backend has the mirror test
        // (`deferred_routine_at_quiescence_still_runs`).
        let mut spec = RunSpec::new(plug_home(2), EngineConfig::new(VisibilityModel::ev()));
        let first = spec.submit(Submission::at(
            simple_routine(&[0], Value::ON),
            Timestamp::ZERO,
        ));
        spec.submit(Submission::after(
            simple_routine(&[1], Value::ON),
            first,
            TimeDelta::ZERO,
        ));
        let out = run(&spec);
        assert!(out.completed);
        assert_eq!(out.trace.committed().len(), 2, "the dependent ran too");
        assert_eq!(out.trace.end_states[&d(1)], Value::ON);
    }

    #[test]
    fn fail_stop_devices_abort_must_routines() {
        // Device 0 dies before the routine reaches it.
        let mut spec = RunSpec::new(plug_home(2), EngineConfig::new(VisibilityModel::ev()));
        spec.failures = FailurePlan::none().fail(d(0), Timestamp::ZERO);
        spec.submit(Submission::at(
            simple_routine(&[1, 0], Value::ON),
            Timestamp::from_secs(10), // well past detection
        ));
        let out = run(&spec);
        assert!(out.completed);
        let id = out.trace.submission_order()[0];
        assert!(out.trace.records[&id].aborted());
        // Failure event appears in the final order.
        assert!(out
            .trace
            .final_order
            .iter()
            .any(|o| matches!(o, safehome_types::trace::OrderItem::Failure(dev) if *dev == d(0))));
        // Device 1's ON was rolled back by the abort.
        assert_eq!(out.trace.end_states[&d(1)], Value::OFF);
    }

    #[test]
    fn failure_detection_is_recorded_within_interval_plus_timeout() {
        let mut spec = RunSpec::new(plug_home(1), EngineConfig::new(VisibilityModel::ev()));
        spec.failures = FailurePlan::none().fail(d(0), Timestamp::from_millis(2_500));
        spec.submit(Submission::at(
            simple_routine(&[0], Value::ON),
            Timestamp::ZERO,
        ));
        // A second, later submission keeps the run alive through the
        // detection window (it aborts on the dead device, which is fine).
        spec.submit(Submission::at(
            simple_routine(&[0], Value::ON),
            Timestamp::from_secs(5),
        ));
        let out = run(&spec);
        let detect = out
            .trace
            .events
            .iter()
            .find(|e| matches!(e.kind, TraceEventKind::DeviceDownDetected { .. }))
            .expect("failure detected");
        let lag = detect.at.since(Timestamp::from_millis(2_500));
        assert!(
            lag <= TimeDelta::from_millis(1_100),
            "detection lag {lag} exceeds interval+timeout"
        );
    }

    #[test]
    fn recovery_is_detected_by_probes() {
        let mut spec = RunSpec::new(plug_home(1), EngineConfig::new(VisibilityModel::ev()));
        spec.failures = FailurePlan::none().fail_recover(
            d(0),
            Timestamp::from_millis(1_500),
            TimeDelta::from_secs(3),
        );
        // A late routine keeps the run going past the recovery.
        spec.submit(Submission::at(
            simple_routine(&[0], Value::ON),
            Timestamp::from_secs(10),
        ));
        let out = run(&spec);
        assert!(out.completed);
        assert!(out
            .trace
            .events
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::DeviceUpDetected { .. })));
        // The routine ran after recovery and succeeded.
        let id = out.trace.submission_order()[0];
        assert!(out.trace.records[&id].committed());
        assert_eq!(out.trace.end_states[&d(0)], Value::ON);
    }

    #[test]
    fn best_effort_skip_is_traced_and_routine_commits() {
        let mut spec = RunSpec::new(plug_home(2), EngineConfig::new(VisibilityModel::ev()));
        spec.failures = FailurePlan::none().fail(d(0), Timestamp::ZERO);
        let r = Routine::builder("leave-home")
            .set_best_effort(d(0), Value::ON, TimeDelta::from_millis(100))
            .set(d(1), Value::ON, TimeDelta::from_millis(100))
            .build();
        spec.submit(Submission::at(r, Timestamp::from_secs(5)));
        let out = run(&spec);
        let id = out.trace.submission_order()[0];
        let rec = &out.trace.records[&id];
        assert_eq!(rec.outcome, Some(RoutineOutcome::Committed));
        assert_eq!(rec.best_effort_skipped, 1);
        assert_eq!(out.trace.end_states[&d(1)], Value::ON);
    }

    #[test]
    fn skipped_best_effort_device_is_not_first_touched() {
        // Regression: a best-effort command skipped without dispatching
        // must not count as the routine's "first touch" of its device. A
        // later failure of that device while the routine is mid-flight
        // elsewhere must not abort it (rules 2/4 resolve at dispatch),
        // and once the device recovers the routine's real first touch
        // serializes the failure/restart pair *before* the routine.
        for scheduler in [
            safehome_core::SchedulerKind::Fcfs,
            safehome_core::SchedulerKind::Jit,
            safehome_core::SchedulerKind::Timeline,
        ] {
            let mut spec = RunSpec::new(
                plug_home(2),
                EngineConfig::new(VisibilityModel::Ev { scheduler }),
            );
            // d0 is down when the routine skips its best-effort command on
            // it, then fails AGAIN at t=10s while the routine is mid-way
            // through its long d1 command, and finally recovers before the
            // routine's must command on d0. The second failure must not
            // abort the routine: it never actually dispatched on d0.
            spec.failures = FailurePlan::none()
                .fail_recover(d(0), Timestamp::ZERO, TimeDelta::from_secs(8))
                .fail_recover(d(0), Timestamp::from_secs(10), TimeDelta::from_secs(4));
            let r = Routine::builder("be-then-must")
                .set_best_effort(d(0), Value::ON, TimeDelta::from_millis(100))
                .set(d(1), Value::ON, TimeDelta::from_secs(20))
                .set(d(0), Value::ON, TimeDelta::from_millis(100))
                .build();
            spec.submit(Submission::at(r, Timestamp::from_secs(5)));
            let out = run(&spec);
            assert!(out.completed, "{scheduler:?}");
            let id = out.trace.submission_order()[0];
            assert!(
                out.trace.records[&id].committed(),
                "skipped best-effort is not a touch; the routine survives \
                 the failure and commits ({scheduler:?})"
            );
            assert_eq!(out.trace.end_states[&d(0)], Value::ON, "{scheduler:?}");
        }
    }

    #[test]
    fn wv_concurrent_opposing_routines_can_interleave() {
        // Fig. 1's setup: all-ON vs all-OFF with a start offset smaller
        // than the per-call network jitter ends incongruent for at least
        // one seed under WV's open-loop dispatch.
        let mut mixed = 0;
        for seed in 0..20 {
            let mut spec =
                RunSpec::new(plug_home(6), EngineConfig::new(VisibilityModel::Wv)).with_seed(seed);
            spec.submit(Submission::at(
                simple_routine(&[0, 1, 2, 3, 4, 5], Value::ON),
                Timestamp::ZERO,
            ));
            spec.submit(Submission::at(
                simple_routine(&[0, 1, 2, 3, 4, 5], Value::OFF),
                Timestamp::from_millis(10),
            ));
            let out = run(&spec);
            let states: Vec<Value> = (0..6).map(|i| out.trace.end_states[&d(i)]).collect();
            let all_on = states.iter().all(|&v| v == Value::ON);
            let all_off = states.iter().all(|&v| v == Value::OFF);
            if !all_on && !all_off {
                mixed += 1;
            }
        }
        assert!(
            mixed > 0,
            "WV should produce at least one incongruent end state"
        );
    }

    #[test]
    fn ev_concurrent_opposing_routines_stay_congruent() {
        for seed in 0..20 {
            let mut spec = RunSpec::new(plug_home(6), EngineConfig::new(VisibilityModel::ev()))
                .with_seed(seed);
            spec.submit(Submission::at(
                simple_routine(&[0, 1, 2, 3, 4, 5], Value::ON),
                Timestamp::ZERO,
            ));
            spec.submit(Submission::at(
                simple_routine(&[0, 1, 2, 3, 4, 5], Value::OFF),
                Timestamp::from_millis(10),
            ));
            let out = run(&spec);
            assert!(out.completed);
            let states: Vec<Value> = (0..6).map(|i| out.trace.end_states[&d(i)]).collect();
            let all_on = states.iter().all(|&v| v == Value::ON);
            let all_off = states.iter().all(|&v| v == Value::OFF);
            assert!(
                all_on || all_off,
                "EV must serialize: {states:?} (seed {seed})"
            );
        }
    }

    #[test]
    fn pipelined_breakfast_is_faster_under_ev_than_gsv() {
        let breakfast = || {
            Routine::builder("breakfast")
                .set(d(0), Value::ON, TimeDelta::from_secs(240))
                .set(d(0), Value::OFF, TimeDelta::from_millis(100))
                .set(d(1), Value::ON, TimeDelta::from_secs(300))
                .set(d(1), Value::OFF, TimeDelta::from_millis(100))
                .build()
        };
        let run_model = |model: VisibilityModel| {
            let mut spec = RunSpec::new(plug_home(2), EngineConfig::new(model));
            spec.submit(Submission::at(breakfast(), Timestamp::ZERO));
            spec.submit(Submission::at(breakfast(), Timestamp::from_millis(10)));
            let out = run(&spec);
            assert!(out.completed);
            out.trace.end_time()
        };
        let ev = run_model(VisibilityModel::ev());
        let gsv = run_model(VisibilityModel::Gsv { strong: false });
        assert!(
            ev.as_millis() < gsv.as_millis(),
            "EV ({ev}) should finish before GSV ({gsv})"
        );
    }
}
