//! The discrete-event run driver.
//!
//! [`Driver`] binds one engine, one virtual home and one event queue and
//! advances them one popped event at a time ([`Driver::step`]), reporting
//! everything that happens to a pluggable [`TraceSink`]. The full
//! [`Trace`] recorder is the default sink; fleet-scale callers plug in
//! [`safehome_types::sink::RunCounters`] to keep the hot loop free of
//! per-event allocation. [`run`] is the one-shot convenience wrapper that
//! drives a spec to quiescence and returns its full trace.

use std::cell::RefCell;
use std::collections::BTreeMap;

use safehome_core::{Effect, EffectBuf, Engine, Input, TimerId};
use safehome_devices::{
    Detection, DeviceEvent, DispatchTicket, FailureDetector, Health, VirtualDevice,
};
use safehome_sim::{EventQueue, SimRng};
use safehome_types::{
    sink::TraceSink,
    trace::{CmdOutcome, Trace, TraceEventKind},
    DeviceId, RoutineId, TimeDelta, Timestamp, Value,
};

use crate::spec::{Arrival, RunSpec};

/// Result of one simulated run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The complete execution trace.
    pub trace: Trace,
    /// `false` if the run hit the safety horizon before quiescence (a
    /// deadlock or an unsatisfiable submission dependency).
    pub completed: bool,
    /// The engine's committed device states at the end.
    pub committed_states: BTreeMap<DeviceId, Value>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Submit(usize),
    /// A dispatched command arrives at its device after network latency;
    /// independent per-call latency is what lets concurrent routines race
    /// at the devices (the source of Fig. 1's incongruence under WV).
    DeviceArrive(DeviceId, DispatchTicket),
    DeviceComplete(DeviceId),
    InjectFail(DeviceId),
    InjectRestart(DeviceId),
    Probe(DeviceId),
    ProbeTimeout(DeviceId),
    EngineTimer(TimerId),
}

fn is_material(ev: &Ev) -> bool {
    !matches!(ev, Ev::Probe(_) | Ev::ProbeTimeout(_))
}

thread_local! {
    /// Recycled event queues: a fleet worker runs thousands of homes on
    /// one thread, and reusing the queue's bucket/deque storage keeps the
    /// per-home event loop free of queue allocations (the PR 1 arena-pool
    /// lever applied to the run loop). Reuse never changes results — a
    /// recycled queue is indistinguishable from a fresh one.
    static QUEUE_POOL: RefCell<Vec<EventQueue<Ev>>> = const { RefCell::new(Vec::new()) };
}

/// Queues kept per thread; one suffices per worker, a few cover nested
/// driver use in tests.
const QUEUE_POOL_CAP: usize = 4;

fn pooled_queue() -> EventQueue<Ev> {
    QUEUE_POOL
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_default()
}

fn recycle_queue(mut queue: EventQueue<Ev>) {
    queue.clear();
    QUEUE_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < QUEUE_POOL_CAP {
            pool.push(queue);
        }
    });
}

/// What one [`Driver::step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// One event was processed at the given virtual time.
    Event(Timestamp),
    /// The run reached quiescence; every submission resolved.
    Quiescent,
    /// The run cannot make further progress: an unsatisfiable submission
    /// dependency or the safety horizon was hit.
    Stalled,
}

/// A stepped simulation driver over one [`RunSpec`].
///
/// Construction schedules the workload, failure plan and detector probe
/// loops; each [`Driver::step`] pops and processes one event. The driver
/// is deterministic: equal specs (including the seed) produce identical
/// event streams regardless of how stepping is interleaved with
/// inspection.
pub struct Driver<'a, S: TraceSink = Trace> {
    spec: &'a RunSpec,
    engine: Engine,
    devices: Vec<VirtualDevice>,
    detector: FailureDetector,
    queue: EventQueue<Ev>,
    rng: SimRng,
    sink: S,
    /// Scratch for engine effects, drained in place after every
    /// `submit`/`handle` call: the steady-state loop allocates nothing
    /// per event.
    fx: EffectBuf,
    latency: safehome_devices::LatencyModel,
    /// Outstanding material (non-probe) events.
    material: usize,
    /// `After` submissions not yet scheduled, keyed by predecessor index.
    deferred: BTreeMap<usize, Vec<(usize, TimeDelta)>>,
    unscheduled: usize,
    sub_of_routine: BTreeMap<RoutineId, usize>,
    completed: bool,
    done: bool,
}

impl<'a> Driver<'a, Trace> {
    /// A driver recording the full execution trace.
    ///
    /// # Panics
    ///
    /// Panics if a submission references an unknown device (specs are
    /// authored by the workload generators, which validate against the
    /// home).
    pub fn new(spec: &'a RunSpec) -> Self {
        let trace = Trace::new(spec.home.initial_states());
        Driver::with_sink(spec, trace)
    }
}

impl<'a, S: TraceSink> Driver<'a, S> {
    /// A driver reporting to the given sink.
    pub fn with_sink(spec: &'a RunSpec, sink: S) -> Self {
        let n = spec.home.len();
        let initial = spec.home.initial_states();
        let devices: Vec<VirtualDevice> = spec
            .home
            .devices()
            .iter()
            .map(|d| VirtualDevice::new(d.initial, TimeDelta::ZERO, spec.detect_timeout))
            .collect();
        let mut driver = Driver {
            spec,
            engine: Engine::new(spec.config.clone(), &initial),
            devices,
            detector: FailureDetector::new(n, spec.ping_interval, spec.detect_timeout),
            queue: pooled_queue(),
            rng: SimRng::seed_from_u64(spec.seed),
            sink,
            fx: EffectBuf::new(),
            latency: spec.latency,
            material: 0,
            deferred: BTreeMap::new(),
            unscheduled: 0,
            sub_of_routine: BTreeMap::new(),
            completed: false,
            done: false,
        };
        // Schedule the workload.
        for (i, s) in spec.submissions.iter().enumerate() {
            match s.arrival {
                Arrival::At(at) => driver.schedule(at, Ev::Submit(i)),
                Arrival::After { index, delay } => {
                    assert!(index < spec.submissions.len(), "dangling dependency");
                    driver.deferred.entry(index).or_default().push((i, delay));
                    driver.unscheduled += 1;
                }
            }
        }
        // Schedule ground-truth failures and the detector's probe loops.
        for ev in spec.failures.sorted_events() {
            let kind = if ev.is_failure {
                Ev::InjectFail(ev.device)
            } else {
                Ev::InjectRestart(ev.device)
            };
            driver.schedule(ev.at, kind);
        }
        // Probes exist to detect health transitions, and a device the
        // failure plan never touches can never have one — every probe of
        // an always-healthy device is a no-op for the engine, the trace
        // and the RNG (it acks, re-arms its own deadline, and changes no
        // shared state). Skipping those loops per device drops the
        // dominant event-queue load of failure-injecting runs (≈ devices
        // × horizon / ping-interval events, of which only the plan's
        // devices ever matter) without changing the event stream at all.
        for d in spec.home.ids() {
            if spec.failures.involves(d) {
                let at = driver.detector.next_probe_at(d);
                driver.queue.schedule(at, Ev::Probe(d)); // probes are immaterial
            }
        }
        driver
    }

    /// The current virtual time.
    pub fn now(&self) -> Timestamp {
        self.queue.now()
    }

    /// Read access to the sink (inspect mid-run state between steps).
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// `true` once the run has ended (quiescent or stalled).
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Pops and processes the next event.
    pub fn step(&mut self) -> Step {
        if self.done {
            return if self.completed {
                Step::Quiescent
            } else {
                Step::Stalled
            };
        }
        if self.material == 0 && self.engine.quiescent() {
            self.done = true;
            if self.unscheduled == 0 {
                self.completed = true;
                return Step::Quiescent;
            }
            // Unsatisfiable dependency chain.
            self.completed = false;
            return Step::Stalled;
        }
        let Some((now, ev)) = self.queue.pop() else {
            self.done = true;
            self.completed = self.engine.quiescent() && self.unscheduled == 0;
            return if self.completed {
                Step::Quiescent
            } else {
                Step::Stalled
            };
        };
        if now > self.spec.max_time {
            self.done = true;
            self.completed = false;
            return Step::Stalled;
        }
        if is_material(&ev) {
            self.material -= 1;
        }
        self.process(now, ev);
        Step::Event(now)
    }

    /// Steps until the run ends; `true` when it reached quiescence.
    pub fn run_to_quiescence(&mut self) -> bool {
        loop {
            match self.step() {
                Step::Event(_) => {}
                Step::Quiescent => return true,
                Step::Stalled => return false,
            }
        }
    }

    /// Finalizes the sink (witness order, end states, congruence) and
    /// returns it with the engine's committed states and the completion
    /// flag. Callable at any point; an unfinished run reports
    /// `completed = false`.
    pub fn into_output(mut self) -> (S, BTreeMap<DeviceId, Value>, bool) {
        let end_states = self
            .spec
            .home
            .ids()
            .map(|d| (d, self.devices[d.index()].state()))
            .collect();
        let committed = self.engine.committed_states();
        self.sink
            .finish(self.engine.witness_order(), end_states, &committed);
        recycle_queue(std::mem::take(&mut self.queue));
        (self.sink, committed, self.completed)
    }

    fn schedule(&mut self, at: Timestamp, ev: Ev) {
        if is_material(&ev) {
            self.material += 1;
        }
        self.queue.schedule(at, ev);
    }

    fn emit_detection(&mut self, det: Detection, now: Timestamp) {
        let (kind, input) = match det {
            Detection::Down(d) => (
                TraceEventKind::DeviceDownDetected { device: d },
                Input::DeviceDown { device: d },
            ),
            Detection::Up(d) => (
                TraceEventKind::DeviceUpDetected { device: d },
                Input::DeviceUp { device: d },
            ),
        };
        self.sink.record(now, kind);
        self.engine.handle(input, now, &mut self.fx);
        self.apply_effects(now);
    }

    /// Drains the effect scratch in place, interpreting each effect. The
    /// buffer is always fully drained before the next engine call, so
    /// one reusable allocation serves the whole run.
    fn apply_effects(&mut self, now: Timestamp) {
        // The loop needs `&mut self` (scheduling, RNG, sink), so detach
        // the buffer for its duration; effects never re-enter the engine
        // here, so nothing else writes to it meanwhile.
        let mut fx = std::mem::take(&mut self.fx);
        for e in fx.drain(..) {
            match e {
                Effect::Dispatch {
                    routine,
                    idx,
                    device,
                    action,
                    duration,
                    rollback,
                } => {
                    if !rollback {
                        self.sink.record(
                            now,
                            TraceEventKind::CommandDispatched {
                                routine,
                                idx,
                                device,
                            },
                        );
                    }
                    let net = self.latency.sample(&mut self.rng);
                    let ticket = DispatchTicket {
                        routine: Some(routine),
                        idx,
                        action,
                        duration,
                        rollback,
                    };
                    self.schedule(now + net, Ev::DeviceArrive(device, ticket));
                }
                Effect::SetTimer { timer, at } => self.schedule(at, Ev::EngineTimer(timer)),
                Effect::Started { routine } => {
                    self.sink.record(now, TraceEventKind::Started { routine });
                }
                Effect::Committed { routine } => {
                    self.sink.record(now, TraceEventKind::Committed { routine });
                    self.release_dependents(routine, now);
                }
                Effect::Aborted {
                    routine,
                    reason,
                    executed,
                    rolled_back,
                } => {
                    self.sink.record(
                        now,
                        TraceEventKind::Aborted {
                            routine,
                            reason,
                            executed,
                            rolled_back,
                        },
                    );
                    self.release_dependents(routine, now);
                }
                Effect::BestEffortSkipped {
                    routine,
                    idx,
                    device,
                } => {
                    self.sink.record(
                        now,
                        TraceEventKind::BestEffortSkipped {
                            routine,
                            idx,
                            device,
                        },
                    );
                }
                Effect::Feedback { .. } => {}
            }
        }
        debug_assert!(
            self.fx.is_empty(),
            "effects appended to the scratch during the drain would be lost"
        );
        self.fx = fx;
    }

    fn release_dependents(&mut self, routine: RoutineId, now: Timestamp) {
        let Some(&sub) = self.sub_of_routine.get(&routine) else {
            return;
        };
        let Some(deps) = self.deferred.remove(&sub) else {
            return;
        };
        for (dep_index, delay) in deps {
            self.unscheduled -= 1;
            self.schedule(now + delay, Ev::Submit(dep_index));
        }
    }

    fn process(&mut self, now: Timestamp, ev: Ev) {
        match ev {
            Ev::Submit(i) => {
                let routine = &self.spec.submissions[i].routine;
                let id = self
                    .engine
                    .submit(routine.clone(), now, &mut self.fx)
                    .expect("workload validated against home");
                self.sub_of_routine.insert(id, i);
                self.sink.record_submission(id, routine, now);
                self.apply_effects(now);
            }
            Ev::DeviceArrive(d, ticket) => {
                if let Some(at) = self.devices[d.index()].dispatch(ticket, now) {
                    self.schedule(at, Ev::DeviceComplete(d));
                }
            }
            Ev::InjectFail(d) => {
                if let Some(reply_at) = self.devices[d.index()].fail(now) {
                    self.schedule(reply_at, Ev::DeviceComplete(d));
                }
            }
            Ev::InjectRestart(d) => self.devices[d.index()].restart(),
            Ev::DeviceComplete(d) => {
                let (event, next) = self.devices[d.index()].on_completion_timer(now);
                if let Some(at) = next {
                    self.schedule(at, Ev::DeviceComplete(d));
                }
                match event {
                    None => {} // Stale timer (failure moved the reply).
                    Some(DeviceEvent::Completed {
                        ticket,
                        new_state,
                        observed,
                    }) => {
                        if let Some(v) = new_state {
                            self.sink.record(
                                now,
                                TraceEventKind::StateChanged {
                                    device: d,
                                    value: v,
                                    by: ticket.routine,
                                    rollback: ticket.rollback,
                                },
                            );
                        }
                        if let Some(det) = self.detector.on_ack(d, now) {
                            self.emit_detection(det, now);
                        }
                        let routine = ticket.routine.expect("harness tickets carry routines");
                        if !ticket.rollback {
                            self.sink.record(
                                now,
                                TraceEventKind::CommandCompleted {
                                    routine,
                                    idx: ticket.idx,
                                    device: d,
                                    outcome: CmdOutcome::Success { observed },
                                },
                            );
                        }
                        self.engine.handle(
                            Input::CommandResult {
                                routine,
                                idx: ticket.idx,
                                device: d,
                                success: true,
                                observed,
                                rollback: ticket.rollback,
                            },
                            now,
                            &mut self.fx,
                        );
                        self.apply_effects(now);
                    }
                    Some(DeviceEvent::Failed { ticket }) => {
                        // A dead command reply is also an implicit
                        // detection: the edge times out on the call.
                        if let Some(det) = self.detector.on_timeout(d, now) {
                            self.emit_detection(det, now);
                        }
                        let routine = ticket.routine.expect("harness tickets carry routines");
                        if !ticket.rollback {
                            self.sink.record(
                                now,
                                TraceEventKind::CommandCompleted {
                                    routine,
                                    idx: ticket.idx,
                                    device: d,
                                    outcome: CmdOutcome::Failed,
                                },
                            );
                        }
                        self.engine.handle(
                            Input::CommandResult {
                                routine,
                                idx: ticket.idx,
                                device: d,
                                success: false,
                                observed: None,
                                rollback: ticket.rollback,
                            },
                            now,
                            &mut self.fx,
                        );
                        self.apply_effects(now);
                    }
                }
            }
            Ev::Probe(d) => {
                if !self.detector.probe_due(d, now) {
                    // An implicit ack pushed the deadline; re-arm lazily.
                    let at = self.detector.next_probe_at(d);
                    self.queue.schedule(at, Ev::Probe(d));
                } else if self.devices[d.index()].health() == Health::Up {
                    if let Some(det) = self.detector.on_ack(d, now) {
                        self.emit_detection(det, now);
                    }
                    let at = self.detector.next_probe_at(d);
                    self.queue.schedule(at, Ev::Probe(d));
                } else {
                    self.queue
                        .schedule(now + self.spec.detect_timeout, Ev::ProbeTimeout(d));
                }
            }
            Ev::ProbeTimeout(d) => {
                if self.devices[d.index()].health() == Health::Up {
                    // Restarted inside the probe window: counts as an ack.
                    if let Some(det) = self.detector.on_ack(d, now) {
                        self.emit_detection(det, now);
                    }
                } else if let Some(det) = self.detector.on_timeout(d, now) {
                    self.emit_detection(det, now);
                }
                let at = self.detector.next_probe_at(d);
                self.queue.schedule(at, Ev::Probe(d));
            }
            Ev::EngineTimer(timer) => {
                self.engine
                    .handle(Input::Timer { timer }, now, &mut self.fx);
                self.apply_effects(now);
            }
        }
    }
}

/// Runs a spec to quiescence and returns its full trace.
///
/// # Panics
///
/// Panics if a submission references an unknown device (specs are authored
/// by the workload generators, which validate against the home).
pub fn run(spec: &RunSpec) -> RunOutput {
    let mut driver = Driver::new(spec);
    driver.run_to_quiescence();
    let (trace, committed_states, completed) = driver.into_output();
    RunOutput {
        trace,
        completed,
        committed_states,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Submission;
    use safehome_core::{EngineConfig, VisibilityModel};
    use safehome_devices::catalog::plug_home;
    use safehome_devices::FailurePlan;
    use safehome_types::sink::RunCounters;
    use safehome_types::trace::RoutineOutcome;
    use safehome_types::Routine;

    fn d(i: u32) -> DeviceId {
        DeviceId(i)
    }

    fn all_models() -> Vec<VisibilityModel> {
        vec![
            VisibilityModel::Wv,
            VisibilityModel::Gsv { strong: false },
            VisibilityModel::Gsv { strong: true },
            VisibilityModel::Psv,
            VisibilityModel::ev(),
            VisibilityModel::Ev {
                scheduler: safehome_core::SchedulerKind::Fcfs,
            },
            VisibilityModel::Ev {
                scheduler: safehome_core::SchedulerKind::Jit,
            },
        ]
    }

    fn simple_routine(devs: &[u32], v: Value) -> Routine {
        let mut b = Routine::builder("r");
        for &i in devs {
            b = b.set(d(i), v, TimeDelta::from_millis(100));
        }
        b.build()
    }

    #[test]
    fn single_routine_completes_under_every_model() {
        for model in all_models() {
            let mut spec = RunSpec::new(plug_home(3), EngineConfig::new(model));
            spec.submit(Submission::at(
                simple_routine(&[0, 1, 2], Value::ON),
                Timestamp::ZERO,
            ));
            let out = run(&spec);
            assert!(out.completed, "{model:?}");
            assert_eq!(out.trace.committed().len(), 1, "{model:?}");
            for i in 0..3 {
                assert_eq!(out.trace.end_states[&d(i)], Value::ON, "{model:?}");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let mut spec =
                RunSpec::new(plug_home(5), EngineConfig::new(VisibilityModel::ev())).with_seed(42);
            for i in 0..5u64 {
                spec.submit(Submission::at(
                    simple_routine(&[(i % 5) as u32, ((i + 1) % 5) as u32], Value::ON),
                    Timestamp::from_millis(i * 30),
                ));
            }
            spec
        };
        let a = run(&mk());
        let b = run(&mk());
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn stepped_driver_matches_one_shot_run() {
        let mk = || {
            let mut spec =
                RunSpec::new(plug_home(4), EngineConfig::new(VisibilityModel::ev())).with_seed(9);
            for i in 0..4u64 {
                spec.submit(Submission::at(
                    simple_routine(&[(i % 4) as u32, ((i + 2) % 4) as u32], Value::ON),
                    Timestamp::from_millis(i * 25),
                ));
            }
            spec
        };
        let one_shot = run(&mk());
        let spec = mk();
        let mut driver = Driver::new(&spec);
        let mut events = 0usize;
        let mut last = Timestamp::ZERO;
        loop {
            match driver.step() {
                Step::Event(at) => {
                    assert!(at >= last, "virtual time went backwards");
                    last = at;
                    events += 1;
                }
                Step::Quiescent => break,
                Step::Stalled => panic!("run stalled"),
            }
        }
        assert!(events > 0);
        assert!(driver.is_done());
        // Stepping past the end keeps reporting the terminal state.
        assert_eq!(driver.step(), Step::Quiescent);
        let (trace, committed, completed) = driver.into_output();
        assert!(completed);
        assert_eq!(trace, one_shot.trace);
        assert_eq!(committed, one_shot.committed_states);
    }

    #[test]
    fn counter_sink_matches_full_trace() {
        // The counters-only sink must agree with the full recorder on
        // every aggregate it keeps, including under failures.
        let mk = || {
            let mut spec =
                RunSpec::new(plug_home(6), EngineConfig::new(VisibilityModel::ev())).with_seed(3);
            spec.failures = FailurePlan::none().fail(d(5), Timestamp::from_millis(400));
            for i in 0..6u64 {
                spec.submit(Submission::at(
                    simple_routine(&[(i % 6) as u32, ((i + 1) % 6) as u32], Value::ON),
                    Timestamp::from_millis(i * 200),
                ));
            }
            spec
        };
        let full = run(&mk());
        let spec = mk();
        let mut driver = Driver::with_sink(&spec, RunCounters::new());
        assert!(driver.run_to_quiescence());
        let (counters, committed, _) = driver.into_output();
        assert_eq!(counters.submitted as usize, full.trace.records.len());
        assert_eq!(counters.committed as usize, full.trace.committed().len());
        assert_eq!(counters.aborted as usize, full.trace.aborted().len());
        assert_eq!(counters.end_time, full.trace.end_time());
        let skips: u32 = full
            .trace
            .records
            .values()
            .map(|r| r.best_effort_skipped)
            .sum();
        assert_eq!(counters.best_effort_skipped, skips as u64);
        assert_eq!(
            counters.latencies_ms.len(),
            (counters.committed + counters.aborted) as usize
        );
        assert_eq!(committed, full.committed_states);
        // End-state congruence holds for EV outside the failed device.
        assert!(counters.congruent);
    }

    #[test]
    fn chained_submission_waits_for_predecessor() {
        let mut spec = RunSpec::new(plug_home(2), EngineConfig::new(VisibilityModel::ev()));
        let first = spec.submit(Submission::at(
            simple_routine(&[0], Value::ON),
            Timestamp::ZERO,
        ));
        spec.submit(Submission::after(
            simple_routine(&[1], Value::ON),
            first,
            TimeDelta::from_secs(1),
        ));
        let out = run(&spec);
        assert!(out.completed);
        let ids = out.trace.submission_order();
        let r1 = &out.trace.records[&ids[0]];
        let r2 = &out.trace.records[&ids[1]];
        assert_eq!(
            r2.submitted,
            r1.finished.unwrap() + TimeDelta::from_secs(1),
            "dependent submitted exactly one second after predecessor"
        );
    }

    #[test]
    fn fail_stop_devices_abort_must_routines() {
        // Device 0 dies before the routine reaches it.
        let mut spec = RunSpec::new(plug_home(2), EngineConfig::new(VisibilityModel::ev()));
        spec.failures = FailurePlan::none().fail(d(0), Timestamp::ZERO);
        spec.submit(Submission::at(
            simple_routine(&[1, 0], Value::ON),
            Timestamp::from_secs(10), // well past detection
        ));
        let out = run(&spec);
        assert!(out.completed);
        let id = out.trace.submission_order()[0];
        assert!(out.trace.records[&id].aborted());
        // Failure event appears in the final order.
        assert!(out
            .trace
            .final_order
            .iter()
            .any(|o| matches!(o, safehome_types::trace::OrderItem::Failure(dev) if *dev == d(0))));
        // Device 1's ON was rolled back by the abort.
        assert_eq!(out.trace.end_states[&d(1)], Value::OFF);
    }

    #[test]
    fn failure_detection_is_recorded_within_interval_plus_timeout() {
        let mut spec = RunSpec::new(plug_home(1), EngineConfig::new(VisibilityModel::ev()));
        spec.failures = FailurePlan::none().fail(d(0), Timestamp::from_millis(2_500));
        spec.submit(Submission::at(
            simple_routine(&[0], Value::ON),
            Timestamp::ZERO,
        ));
        // A second, later submission keeps the run alive through the
        // detection window (it aborts on the dead device, which is fine).
        spec.submit(Submission::at(
            simple_routine(&[0], Value::ON),
            Timestamp::from_secs(5),
        ));
        let out = run(&spec);
        let detect = out
            .trace
            .events
            .iter()
            .find(|e| matches!(e.kind, TraceEventKind::DeviceDownDetected { .. }))
            .expect("failure detected");
        let lag = detect.at.since(Timestamp::from_millis(2_500));
        assert!(
            lag <= TimeDelta::from_millis(1_100),
            "detection lag {lag} exceeds interval+timeout"
        );
    }

    #[test]
    fn recovery_is_detected_by_probes() {
        let mut spec = RunSpec::new(plug_home(1), EngineConfig::new(VisibilityModel::ev()));
        spec.failures = FailurePlan::none().fail_recover(
            d(0),
            Timestamp::from_millis(1_500),
            TimeDelta::from_secs(3),
        );
        // A late routine keeps the run going past the recovery.
        spec.submit(Submission::at(
            simple_routine(&[0], Value::ON),
            Timestamp::from_secs(10),
        ));
        let out = run(&spec);
        assert!(out.completed);
        assert!(out
            .trace
            .events
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::DeviceUpDetected { .. })));
        // The routine ran after recovery and succeeded.
        let id = out.trace.submission_order()[0];
        assert!(out.trace.records[&id].committed());
        assert_eq!(out.trace.end_states[&d(0)], Value::ON);
    }

    #[test]
    fn best_effort_skip_is_traced_and_routine_commits() {
        let mut spec = RunSpec::new(plug_home(2), EngineConfig::new(VisibilityModel::ev()));
        spec.failures = FailurePlan::none().fail(d(0), Timestamp::ZERO);
        let r = Routine::builder("leave-home")
            .set_best_effort(d(0), Value::ON, TimeDelta::from_millis(100))
            .set(d(1), Value::ON, TimeDelta::from_millis(100))
            .build();
        spec.submit(Submission::at(r, Timestamp::from_secs(5)));
        let out = run(&spec);
        let id = out.trace.submission_order()[0];
        let rec = &out.trace.records[&id];
        assert_eq!(rec.outcome, Some(RoutineOutcome::Committed));
        assert_eq!(rec.best_effort_skipped, 1);
        assert_eq!(out.trace.end_states[&d(1)], Value::ON);
    }

    #[test]
    fn skipped_best_effort_device_is_not_first_touched() {
        // Regression: a best-effort command skipped without dispatching
        // must not count as the routine's "first touch" of its device. A
        // later failure of that device while the routine is mid-flight
        // elsewhere must not abort it (rules 2/4 resolve at dispatch),
        // and once the device recovers the routine's real first touch
        // serializes the failure/restart pair *before* the routine.
        for scheduler in [
            safehome_core::SchedulerKind::Fcfs,
            safehome_core::SchedulerKind::Jit,
            safehome_core::SchedulerKind::Timeline,
        ] {
            let mut spec = RunSpec::new(
                plug_home(2),
                EngineConfig::new(VisibilityModel::Ev { scheduler }),
            );
            // d0 is down when the routine skips its best-effort command on
            // it, then fails AGAIN at t=10s while the routine is mid-way
            // through its long d1 command, and finally recovers before the
            // routine's must command on d0. The second failure must not
            // abort the routine: it never actually dispatched on d0.
            spec.failures = FailurePlan::none()
                .fail_recover(d(0), Timestamp::ZERO, TimeDelta::from_secs(8))
                .fail_recover(d(0), Timestamp::from_secs(10), TimeDelta::from_secs(4));
            let r = Routine::builder("be-then-must")
                .set_best_effort(d(0), Value::ON, TimeDelta::from_millis(100))
                .set(d(1), Value::ON, TimeDelta::from_secs(20))
                .set(d(0), Value::ON, TimeDelta::from_millis(100))
                .build();
            spec.submit(Submission::at(r, Timestamp::from_secs(5)));
            let out = run(&spec);
            assert!(out.completed, "{scheduler:?}");
            let id = out.trace.submission_order()[0];
            assert!(
                out.trace.records[&id].committed(),
                "skipped best-effort is not a touch; the routine survives \
                 the failure and commits ({scheduler:?})"
            );
            assert_eq!(out.trace.end_states[&d(0)], Value::ON, "{scheduler:?}");
        }
    }

    #[test]
    fn wv_concurrent_opposing_routines_can_interleave() {
        // Fig. 1's setup: all-ON vs all-OFF with a start offset smaller
        // than the per-call network jitter ends incongruent for at least
        // one seed under WV's open-loop dispatch.
        let mut mixed = 0;
        for seed in 0..20 {
            let mut spec =
                RunSpec::new(plug_home(6), EngineConfig::new(VisibilityModel::Wv)).with_seed(seed);
            spec.submit(Submission::at(
                simple_routine(&[0, 1, 2, 3, 4, 5], Value::ON),
                Timestamp::ZERO,
            ));
            spec.submit(Submission::at(
                simple_routine(&[0, 1, 2, 3, 4, 5], Value::OFF),
                Timestamp::from_millis(10),
            ));
            let out = run(&spec);
            let states: Vec<Value> = (0..6).map(|i| out.trace.end_states[&d(i)]).collect();
            let all_on = states.iter().all(|&v| v == Value::ON);
            let all_off = states.iter().all(|&v| v == Value::OFF);
            if !all_on && !all_off {
                mixed += 1;
            }
        }
        assert!(
            mixed > 0,
            "WV should produce at least one incongruent end state"
        );
    }

    #[test]
    fn ev_concurrent_opposing_routines_stay_congruent() {
        for seed in 0..20 {
            let mut spec = RunSpec::new(plug_home(6), EngineConfig::new(VisibilityModel::ev()))
                .with_seed(seed);
            spec.submit(Submission::at(
                simple_routine(&[0, 1, 2, 3, 4, 5], Value::ON),
                Timestamp::ZERO,
            ));
            spec.submit(Submission::at(
                simple_routine(&[0, 1, 2, 3, 4, 5], Value::OFF),
                Timestamp::from_millis(10),
            ));
            let out = run(&spec);
            assert!(out.completed);
            let states: Vec<Value> = (0..6).map(|i| out.trace.end_states[&d(i)]).collect();
            let all_on = states.iter().all(|&v| v == Value::ON);
            let all_off = states.iter().all(|&v| v == Value::OFF);
            assert!(
                all_on || all_off,
                "EV must serialize: {states:?} (seed {seed})"
            );
        }
    }

    #[test]
    fn pipelined_breakfast_is_faster_under_ev_than_gsv() {
        let breakfast = || {
            Routine::builder("breakfast")
                .set(d(0), Value::ON, TimeDelta::from_secs(240))
                .set(d(0), Value::OFF, TimeDelta::from_millis(100))
                .set(d(1), Value::ON, TimeDelta::from_secs(300))
                .set(d(1), Value::OFF, TimeDelta::from_millis(100))
                .build()
        };
        let run_model = |model: VisibilityModel| {
            let mut spec = RunSpec::new(plug_home(2), EngineConfig::new(model));
            spec.submit(Submission::at(breakfast(), Timestamp::ZERO));
            spec.submit(Submission::at(breakfast(), Timestamp::from_millis(10)));
            let out = run(&spec);
            assert!(out.completed);
            out.trace.end_time()
        };
        let ev = run_model(VisibilityModel::ev());
        let gsv = run_model(VisibilityModel::Gsv { strong: false });
        assert!(
            ev.as_millis() < gsv.as_millis(),
            "EV ({ev}) should finish before GSV ({gsv})"
        );
    }
}
