//! Byte-identity of the intra-home merge against the sequential path.
//!
//! The whole point of [`safehome_harness::intra`] is that running a
//! decomposable home as per-cluster sub-drivers and merging is
//! *indistinguishable* from the sequential driver — same
//! [`RunCounters`], same digest, bit for bit. These tests pin that on
//! hand-built partitions (the structural analysis lives above the
//! harness in `safehome-lint`; here the partition is an input).

use safehome_core::{EngineConfig, VisibilityModel};
use safehome_devices::catalog::plug_home;
use safehome_devices::LatencyModel;
use safehome_harness::{
    build_sub_specs, run_clustered, spec_decomposable, Driver, HomePartition, RunSpec, Submission,
};
use safehome_types::{sink::RunCounters, DeviceId, Routine, TimeDelta, Timestamp, Value};

fn d(i: u64) -> DeviceId {
    DeviceId(i as u32)
}

fn sequential(spec: &RunSpec) -> RunCounters {
    let mut driver = Driver::with_sink(spec, RunCounters::new());
    assert!(driver.run_to_quiescence(), "sequential run must complete");
    let (counters, _, _) = driver.into_output();
    counters
}

/// A "factory floor" home: `zones` independent device groups of three,
/// submissions interleaved round-robin across zones so cluster indices
/// are non-contiguous and `After` edges need real remapping. Within a
/// zone there is same-device contention, a chained `After`, and
/// same-instant arrivals that collide *across* zones.
fn zoned_spec(zones: usize, base_ms: u64) -> (RunSpec, HomePartition) {
    let mut spec = RunSpec::new(
        plug_home(zones * 3),
        EngineConfig::new(VisibilityModel::ev()),
    );
    spec.latency = LatencyModel::Fixed(TimeDelta::from_millis(20));
    let mut clusters = vec![Vec::new(); zones];
    // Four waves, round-robin across zones within each wave.
    for wave in 0..4 {
        for (z, cluster) in clusters.iter_mut().enumerate() {
            let (a, b, c) = (3 * z as u64, 3 * z as u64 + 1, 3 * z as u64 + 2);
            let idx = match wave {
                // Multi-device routine, same arrival instant in every
                // zone — exercises the construction-order tie-break.
                0 => spec.submit(Submission::at(
                    Routine::builder(format!("z{z}-sweep"))
                        .set(d(a), Value::ON, TimeDelta::from_millis(base_ms))
                        .set(d(b), Value::ON, TimeDelta::from_millis(base_ms / 2))
                        .build(),
                    Timestamp::from_millis(5),
                )),
                // Contends on device `a` with the sweep.
                1 => spec.submit(Submission::at(
                    Routine::builder(format!("z{z}-contend"))
                        .set(d(a), Value::OFF, TimeDelta::from_millis(base_ms / 3))
                        .build(),
                    Timestamp::from_millis(7 + z as u64),
                )),
                // Chained after the sweep (cluster-internal edge whose
                // global predecessor index differs from the local one).
                2 => {
                    let pred = cluster[0];
                    spec.submit(Submission::after(
                        Routine::builder(format!("z{z}-chained"))
                            .set(d(c), Value::ON, TimeDelta::from_millis(base_ms / 4))
                            .build(),
                        pred,
                        TimeDelta::from_millis(9),
                    ))
                }
                // Late same-instant tail across zones.
                _ => spec.submit(Submission::at(
                    Routine::builder(format!("z{z}-tail"))
                        .set(d(b), Value::OFF, TimeDelta::from_millis(base_ms / 5 + 1))
                        .build(),
                    Timestamp::from_millis(400),
                )),
            };
            cluster.push(idx);
        }
    }
    (spec, HomePartition { clusters })
}

#[test]
fn merged_counters_are_byte_identical_to_sequential() {
    for zones in [2, 3, 5] {
        for base_ms in [40, 130] {
            let (spec, partition) = zoned_spec(zones, base_ms);
            assert!(spec_decomposable(&spec));
            let merged = run_clustered(&spec, &partition)
                .expect("decomposable spec with a splitting partition must merge");
            let seq = sequential(&spec);
            assert_eq!(
                merged, seq,
                "zones={zones} base={base_ms}: merged counters diverge from sequential"
            );
        }
    }
}

#[test]
fn merge_is_stable_across_cluster_enumeration_order() {
    let (spec, partition) = zoned_spec(3, 70);
    let reversed = HomePartition {
        clusters: partition.clusters.iter().rev().cloned().collect(),
    };
    let a = run_clustered(&spec, &partition).unwrap();
    let b = run_clustered(&spec, &reversed).unwrap();
    assert_eq!(a, b, "cluster enumeration order must not matter");
}

#[test]
fn sub_specs_project_the_workload() {
    let (spec, partition) = zoned_spec(2, 50);
    let subs = build_sub_specs(&spec, &partition);
    assert_eq!(subs.len(), 2);
    let total: usize = subs.iter().map(|s| s.submissions.len()).sum();
    assert_eq!(total, spec.submissions.len());
    for (sub, locals) in subs.iter().zip(&partition.clusters) {
        assert_eq!(sub.home.len(), spec.home.len(), "full home retained");
        for (local, &global) in locals.iter().enumerate() {
            assert_eq!(
                sub.submissions[local].routine.name,
                spec.submissions[global].routine.name
            );
        }
    }
}

#[test]
fn gate_refuses_what_the_proof_does_not_cover() {
    let (mut spec, partition) = zoned_spec(2, 50);
    spec.latency = LatencyModel::default(); // jittered
    assert!(!spec_decomposable(&spec));
    assert!(run_clustered(&spec, &partition).is_none());

    let (spec, _) = zoned_spec(2, 50);
    let whole = HomePartition {
        clusters: vec![(0..spec.submissions.len()).collect()],
    };
    assert!(
        run_clustered(&spec, &whole).is_none(),
        "a one-cluster partition has nothing to parallelize"
    );
}
