//! Property test for the calendar-queue rewrite.
//!
//! The bucketed wheel + sorted-overflow [`EventQueue`] replaced an
//! inverted-`BinaryHeap` implementation whose contract every digest in
//! the repo depends on: pops in non-decreasing timestamp order, FIFO
//! among same-instant events (by insertion sequence), and past events
//! clamped to `now` *keeping their insertion rank at the clamped
//! instant*. This test drives random interleaved schedule/pop sequences
//! — with timestamps spanning in-wheel, window-edge and deep-overflow
//! horizons, and deliberate past-event clamps — against a naive
//! reference that literally is the old heap, and checks the two produce
//! identical `(at, payload)` pop streams, clocks and peeks at every
//! step.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use proptest::prelude::*;
use safehome_sim::EventQueue;
use safehome_types::Timestamp;

/// The pre-rewrite implementation, verbatim in spirit: an inverted
/// max-heap over `(at, seq)` with clamp-to-now scheduling.
struct HeapQueue {
    heap: BinaryHeap<HeapEntry>,
    next_seq: u64,
    now: Timestamp,
}

struct HeapEntry {
    at: Timestamp,
    seq: u64,
    payload: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl HeapQueue {
    fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Timestamp::ZERO,
        }
    }

    fn schedule(&mut self, at: Timestamp, payload: u32) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry { at, seq, payload });
    }

    fn pop(&mut self) -> Option<(Timestamp, u32)> {
        let e = self.heap.pop()?;
        self.now = e.at;
        Some((e.at, e.payload))
    }

    fn peek_time(&self) -> Option<Timestamp> {
        self.heap.peek().map(|e| e.at)
    }
}

/// One scripted operation: `Some(offset_kind)` schedules, `None` pops.
/// Offsets are interpreted relative to the queue's clock so clamping and
/// horizon crossings happen throughout the run, not only at the start.
fn apply_ops(ops: &[(u8, u16)]) -> Result<(), String> {
    let mut wheel = EventQueue::new();
    let mut heap = HeapQueue::new();
    let mut payload = 0u32;
    for &(kind, raw) in ops {
        match kind % 4 {
            // Schedule near (in-wheel), far (overflow), or in the past
            // (clamped); identical calls go to both queues.
            0 | 1 => {
                let at = match kind % 4 {
                    0 => Timestamp::from_millis(wheel.now().as_millis() + raw as u64),
                    _ => {
                        // Past half the time (clamp), deep future otherwise.
                        if raw % 2 == 0 {
                            Timestamp::from_millis(wheel.now().as_millis() / 2)
                        } else {
                            Timestamp::from_millis(wheel.now().as_millis() + 4_096 + raw as u64 * 7)
                        }
                    }
                };
                payload += 1;
                wheel.schedule(at, payload);
                heap.schedule(at, payload);
            }
            _ => {
                prop_assert_eq!(
                    wheel.peek_time(),
                    heap.peek_time(),
                    "peek diverged before pop"
                );
                let w = wheel.pop();
                let h = heap.pop();
                prop_assert_eq!(w, h, "pop streams diverged");
                prop_assert_eq!(wheel.now(), heap.now, "clocks diverged");
            }
        }
        prop_assert_eq!(wheel.len(), heap.heap.len(), "lengths diverged");
    }
    // Drain whatever is left: the full residual orders must agree too.
    while let Some(h) = heap.pop() {
        prop_assert_eq!(wheel.pop(), Some(h), "drain diverged");
    }
    prop_assert!(wheel.is_empty());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn calendar_queue_matches_heap_reference(
        ops in prop::collection::vec((any::<u32>().prop_map(|k| (k % 251) as u8), 0u16..5000), 1..200),
    ) {
        apply_ops(&ops)?;
    }
}

#[test]
fn clamped_backlog_matches_reference_exactly() {
    // Deterministic worst case: everything lands on one clamped instant.
    let mut wheel = EventQueue::new();
    let mut heap = HeapQueue::new();
    wheel.schedule(Timestamp::from_millis(9_000), 0);
    heap.schedule(Timestamp::from_millis(9_000), 0);
    assert_eq!(wheel.pop(), heap.pop());
    for i in 1..50u32 {
        let at = Timestamp::from_millis((i % 7) as u64 * 1_000); // all past
        wheel.schedule(at, i);
        heap.schedule(at, i);
    }
    for _ in 0..49 {
        assert_eq!(wheel.pop(), heap.pop());
    }
    assert_eq!(wheel.pop(), None);
    assert_eq!(heap.pop(), None);
}
