//! Seeded randomness and workload distributions.

use safehome_types::TimeDelta;

/// A seeded random source for simulations.
///
/// Implements xoshiro256++ seeded through SplitMix64 — self-contained so
/// the workspace builds without crates.io access — and adds the two
/// distributions the paper's workloads need: normally distributed
/// durations (Table 3 marks command counts and durations "ND", sampled
/// via Box–Muller) and Zipf-distributed device popularity (§7.6,
/// parameter α). The Zipf sampler is implemented directly from the
/// weight definition `w(k) ∝ k^(-α)` so that α = 0 degenerates to the
/// uniform distribution.
///
/// The generator state is `Clone` so a caller can snapshot the stream
/// position (the service runner's journal-backed eviction parks a home's
/// RNG alongside its journal and restores it on recovery — the restored
/// stream must continue exactly where the evicted one stopped).
#[derive(Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a source from a 64-bit seed. Equal seeds give equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the standard xoshiro seeding procedure.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SimRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit draw (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Derives an independent child source; used to give each trial its
    /// own stream while keeping the parent reproducible.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64())
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn int_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        // Lemire's multiply-shift bounded draw with rejection, exact and
        // branch-light for the small ranges the workloads use.
        let range = span + 1;
        let mut m = (self.next_u64() as u128).wrapping_mul(range as u128);
        let mut low = m as u64;
        if low < range {
            let threshold = range.wrapping_neg() % range;
            while low < threshold {
                m = (self.next_u64() as u128).wrapping_mul(range as u128);
                low = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Uniform choice of an index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick from empty set");
        self.int_in(0, n as u64 - 1) as usize
    }

    /// A standard-normal draw (Box–Muller, one branch discarded).
    fn standard_normal(&mut self) -> f64 {
        // u must be in (0, 1] to keep ln finite.
        let u = 1.0 - self.unit();
        let v = self.unit();
        (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos()
    }

    /// Samples a duration from a normal distribution with the given mean,
    /// standard deviation `mean × rel_std`, truncated below at `min`.
    ///
    /// Table 3 specifies normally distributed command durations; the paper
    /// does not state the variance, so the workloads default to a relative
    /// standard deviation of 0.25 (documented in EXPERIMENTS.md).
    pub fn normal_duration(&mut self, mean: TimeDelta, rel_std: f64, min: TimeDelta) -> TimeDelta {
        let mu = mean.as_millis() as f64;
        let sigma = (mu * rel_std).max(f64::MIN_POSITIVE);
        let sample = mu + sigma * self.standard_normal();
        let ms = sample.max(min.as_millis() as f64).round() as u64;
        TimeDelta::from_millis(ms)
    }

    /// Samples a positive count from a normal distribution with the given
    /// mean (e.g. commands-per-routine, Table 3's C), truncated below at 1.
    pub fn normal_count(&mut self, mean: f64, rel_std: f64) -> usize {
        let sigma = (mean * rel_std).max(f64::MIN_POSITIVE);
        let sample = mean + sigma * self.standard_normal();
        sample.round().max(1.0) as usize
    }

    /// Samples an index in `[0, n)` from a Zipf distribution with exponent
    /// `alpha`: index `k` (0-based) has weight `(k+1)^(-alpha)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha < 0`.
    pub fn zipf_index(&mut self, n: usize, alpha: f64) -> usize {
        assert!(n > 0, "zipf over empty domain");
        assert!(alpha >= 0.0, "negative zipf exponent");
        if alpha == 0.0 {
            return self.index(n);
        }
        // n is small in every workload (≤ 64 devices); a linear CDF walk is
        // exact and fast enough.
        let total: f64 = (1..=n).map(|k| (k as f64).powf(-alpha)).sum();
        let mut target = self.unit() * total;
        for k in 1..=n {
            let w = (k as f64).powf(-alpha);
            if target < w {
                return k - 1;
            }
            target -= w;
        }
        n - 1
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.int_in(0, i as u64) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.int_in(0, 1_000_000), b.int_in(0, 1_000_000));
        }
    }

    #[test]
    fn forked_streams_differ_from_parent_stream() {
        let mut parent = SimRng::seed_from_u64(7);
        let mut child1 = parent.fork();
        let mut child2 = parent.fork();
        let s1: Vec<u64> = (0..16).map(|_| child1.int_in(0, u64::MAX - 1)).collect();
        let s2: Vec<u64> = (0..16).map(|_| child2.int_in(0, u64::MAX - 1)).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn int_in_stays_in_bounds() {
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.int_in(10, 20);
            assert!((10..=20).contains(&v));
        }
        assert_eq!(rng.int_in(5, 5), 5);
    }

    #[test]
    fn unit_is_half_open() {
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn normal_duration_respects_minimum() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let d = rng.normal_duration(
                TimeDelta::from_millis(100),
                2.0, // huge variance to force clamping
                TimeDelta::from_millis(10),
            );
            assert!(d >= TimeDelta::from_millis(10));
        }
    }

    #[test]
    fn normal_count_is_at_least_one() {
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..1_000 {
            assert!(rng.normal_count(1.2, 1.0) >= 1);
        }
    }

    #[test]
    fn normal_duration_centers_on_mean() {
        let mut rng = SimRng::seed_from_u64(11);
        let n = 20_000;
        let sum: u64 = (0..n)
            .map(|_| {
                rng.normal_duration(TimeDelta::from_secs(10), 0.25, TimeDelta::ZERO)
                    .as_millis()
            })
            .sum();
        let mean = sum as f64 / n as f64;
        assert!(
            (mean - 10_000.0).abs() < 100.0,
            "mean {mean} far from 10000"
        );
    }

    #[test]
    fn zipf_zero_alpha_is_uniform() {
        let mut rng = SimRng::seed_from_u64(9);
        let n = 10;
        let mut counts = vec![0u32; n];
        for _ in 0..50_000 {
            counts[rng.zipf_index(n, 0.0)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(
            (*max as f64) / (*min as f64) < 1.15,
            "uniform draw too skewed: {counts:?}"
        );
    }

    #[test]
    fn zipf_high_alpha_prefers_low_indices() {
        let mut rng = SimRng::seed_from_u64(13);
        let n = 25;
        let mut counts = vec![0u32; n];
        for _ in 0..50_000 {
            counts[rng.zipf_index(n, 1.5)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[5]);
        assert!(counts[0] as f64 > 0.3 * 50_000.0);
    }

    #[test]
    fn zipf_small_alpha_is_mildly_skewed() {
        // α = 0.05 is the paper's default; it should be close to uniform.
        let mut rng = SimRng::seed_from_u64(17);
        let n = 25;
        let mut counts = vec![0u32; n];
        for _ in 0..100_000 {
            counts[rng.zipf_index(n, 0.05)] += 1;
        }
        let first = counts[0] as f64;
        let last = counts[n - 1] as f64;
        assert!(first > last, "α>0 must prefer index 0");
        assert!(first / last < 1.4, "α=0.05 should be mild: {counts:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from_u64(21);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(23);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }
}
