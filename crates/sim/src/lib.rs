//! Deterministic discrete-event simulation substrate.
//!
//! The paper evaluates SafeHome by running the real engine over an
//! emulation (§7.1). This crate supplies the emulation's foundations:
//!
//! - [`EventQueue`]: a virtual-time event queue with stable FIFO ordering
//!   for simultaneous events, so runs are exactly reproducible;
//! - [`SimRng`]: a seeded random source with the distributions the
//!   workloads need (normal durations — Table 3 "ND" — and the Zipf
//!   device-popularity distribution of §7.6).
//!
//! Nothing here knows about SafeHome semantics; the harness crate binds
//! these primitives to the engine and device models.

pub mod queue;
pub mod rng;

pub use queue::EventQueue;
pub use rng::SimRng;
