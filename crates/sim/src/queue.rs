//! Virtual-time event queue.
//!
//! Implemented as a bucketed calendar queue (hierarchical timing wheel):
//! a near-future wheel of per-millisecond FIFO buckets, a coarse second
//! level whose buckets each span a full first-level period (giving an
//! hours-long O(1) horizon for open-loop arrival schedules), and a
//! sorted overflow level for events beyond both. The discrete-event hot
//! loop (`safehome-harness`) pops and schedules millions of events per
//! second, and the wheel turns both operations into O(1) deque
//! pushes/pops with no per-event comparisons — the previous inverted
//! `BinaryHeap` paid O(log n) sift costs and a comparator call per level
//! on exactly that path. The pop-order contract is unchanged (see
//! [`EventQueue`]).

use std::collections::{BTreeMap, VecDeque};

use safehome_types::Timestamp;

/// Wheel width in buckets (= milliseconds of near-future horizon). One
/// bucket per millisecond keeps every bucket single-instant, so FIFO
/// order within a bucket *is* insertion order and no per-entry sequence
/// numbers are needed. Sized past the detector's probe interval (1 s) so
/// periodic probe rescheduling — the dominant event load of
/// failure-injecting runs — stays on the O(1) wheel path. Must be a
/// power of two.
const WHEEL: usize = 4096;
const WHEEL_MASK: u64 = (WHEEL as u64) - 1;
/// Occupancy-bitmap words for the wheel.
const WORDS: usize = WHEEL / 64;

/// log2 of the first-level period: each second-level bucket covers one
/// full first-level wheel period (`WHEEL` ms), so draining a single
/// coarse bucket refills the near wheel exactly.
const L2_SHIFT: u32 = WHEEL.trailing_zeros();
/// Second-level width in coarse buckets. With `WHEEL`-ms buckets this
/// spans [`L2_SPAN`] ≈ 4.66 h — enough for a diurnal open-loop arrival
/// schedule to stay off the sorted overflow map.
const L2_BUCKETS: usize = 4096;
const L2_IDX_MASK: u64 = (L2_BUCKETS as u64) - 1;
const L2_WORDS: usize = L2_BUCKETS / 64;
/// Milliseconds covered by a full second-level rotation.
const L2_SPAN: u64 = (L2_BUCKETS as u64) << L2_SHIFT;

/// Coarse second wheel level. Each bucket holds `(instant, payload)`
/// entries for one `WHEEL`-ms span **in insertion order** (a coarse
/// bucket mixes instants; time order is restored when the bucket is
/// drained into the per-millisecond first level, which keeps
/// same-instant FIFO because the drain preserves insertion order).
/// Allocated lazily: a queue whose events never outrun the first level
/// pays nothing for the hierarchy.
struct Level2<E> {
    buckets: Vec<VecDeque<(u64, E)>>,
    occupied: [u64; L2_WORDS],
    /// First instant of the window, aligned down to `WHEEL`. The bucket
    /// for instant `t` is `(t >> L2_SHIFT) & L2_IDX_MASK`; the window
    /// never spans more than one rotation, so the residue is unique.
    start: u64,
    /// First instant *not* covered: events at or past it go to the
    /// overflow map. At most `start + L2_SPAN`, and never past the
    /// earliest overflow instant (the exclusive cap keeps an equal-time
    /// event behind a parked overflow one, mirroring the first level).
    limit: u64,
    len: usize,
}

impl<E> Level2<E> {
    fn new() -> Self {
        Level2 {
            buckets: (0..L2_BUCKETS).map(|_| VecDeque::new()).collect(),
            occupied: [0; L2_WORDS],
            start: 0,
            limit: 0,
            len: 0,
        }
    }

    /// Index of the earliest occupied coarse bucket. Every occupied
    /// bucket lies within one rotation of `start`, so the first set bit
    /// at cyclic distance `>= 0` from `start`'s residue is the earliest.
    fn first_bucket(&self) -> Option<usize> {
        next_occupied_bit(
            &self.occupied,
            ((self.start >> L2_SHIFT) & L2_IDX_MASK) as usize,
        )
    }

    /// First instant of the earliest occupied bucket's span (a lower
    /// bound on every event in it).
    fn first_span_start(&self) -> Option<u64> {
        let b = self.first_bucket()?;
        let base = (self.start >> L2_SHIFT) & L2_IDX_MASK;
        let dist = (b as u64).wrapping_sub(base) & L2_IDX_MASK;
        Some(self.start + (dist << L2_SHIFT))
    }

    fn clear(&mut self) {
        if self.len > 0 {
            for b in &mut self.buckets {
                b.clear();
            }
        }
        self.occupied = [0; L2_WORDS];
        self.start = 0;
        self.limit = 0;
        self.len = 0;
    }
}

/// First set bit at cyclic distance `>= 0` from `from` in a 4096-bit
/// occupancy bitmap, scanning the whole map once. Shared by both wheel
/// levels (identical geometry).
fn next_occupied_bit(occupied: &[u64], from: usize) -> Option<usize> {
    let words = occupied.len();
    let mut w = from / 64;
    let mut word = occupied[w] & (!0u64 << (from % 64));
    for _ in 0..=words {
        if word != 0 {
            return Some(w * 64 + word.trailing_zeros() as usize);
        }
        w = (w + 1) % words;
        word = occupied[w];
        if w == from / 64 {
            // Wrapped: finish with the bits before `from`.
            word &= !(!0u64 << (from % 64));
        }
    }
    None
}

/// A deterministic discrete-event queue.
///
/// Events pop in non-decreasing timestamp order; events scheduled for the
/// same instant pop in insertion order. Popping advances the queue's
/// clock, and scheduling an event in the past is clamped to `now` (this
/// matches how an edge hub would process a backlog: never before now).
///
/// # Structure
///
/// Three levels, all keyed by the event's due time:
///
/// - a **wheel** of `WHEEL` FIFO buckets covering the instants
///   `[window_start, wheel_limit)`, bucket `t & WHEEL_MASK` holding
///   exactly the events due at instant `t` (the window never spans more
///   than one full period, so the residue is unique within it), with an
///   occupancy bitmap for constant-time next-bucket scans;
/// - a lazily allocated **coarse second level** (`Level2`) of
///   `L2_BUCKETS` buckets, each spanning one full first-level period
///   (`WHEEL` ms, so the level covers ~4.66 h), holding events at or
///   beyond `wheel_limit` in insertion order per bucket;
/// - a sorted **overflow** level (`BTreeMap` of per-instant FIFO deques)
///   for events at or beyond the second level's horizon.
///
/// Three invariants make the split correct: every wheel event is earlier
/// than every second-level event, every second-level event is earlier
/// than every overflow event (so a pop can ignore the outer levels while
/// an inner one is non-empty), and a first-level bucket only ever holds
/// one instant. The windows move in three ways, all preserving
/// same-instant FIFO order across levels (an event can only change level
/// before any later-scheduled equal-time event targets the same level
/// directly, because each window limit is capped *exclusively* at the
/// earliest parked instant of the next level out):
///
/// - when a pop finds the wheel empty, it rebases the window onto the
///   earliest pending instant's span — draining the earliest coarse
///   second-level bucket (insertion order restores per-instant FIFO as
///   entries land in per-millisecond buckets) and migrating any overflow
///   events the new window covers, in time order;
/// - when a schedule finds the wheel empty and its event past
///   `wheel_limit`, it slides the window forward to start at `now` —
///   this is what keeps steady periodic work (e.g. probe loops
///   rescheduling `interval` ahead) on the wheel path instead of
///   bouncing through the outer levels;
/// - when a schedule finds the second level empty and its event past
///   `wheel_limit`, it re-anchors the second-level window at
///   `wheel_limit` (aligned down to the period), so hours-long arrival
///   schedules land in O(1) coarse buckets instead of the `BTreeMap`.
///
/// Bucket and overflow deque allocations are recycled across
/// [`EventQueue::clear`] calls, so a pooled queue reaches steady state
/// with zero allocations per event.
///
/// # Examples
///
/// ```
/// use safehome_sim::EventQueue;
/// use safehome_types::Timestamp;
///
/// let mut q = EventQueue::new();
/// q.schedule(Timestamp::from_millis(20), "b");
/// q.schedule(Timestamp::from_millis(10), "a");
/// assert_eq!(q.pop(), Some((Timestamp::from_millis(10), "a")));
/// assert_eq!(q.now(), Timestamp::from_millis(10));
/// ```
pub struct EventQueue<E> {
    /// `buckets[t & WHEEL_MASK]` holds the events due at instant `t` for
    /// `t` within the current window, in insertion order.
    buckets: Vec<VecDeque<E>>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupied: [u64; WORDS],
    /// First instant covered by the wheel. `window_start <= now` between
    /// public calls except transiently inside [`EventQueue::pop`].
    window_start: u64,
    /// First instant *not* covered by the wheel: events at or past it go
    /// to the overflow level. At most `window_start + WHEEL`, and never
    /// past the earliest overflow instant (else a pop could take a wheel
    /// event that should sort after a parked overflow one).
    wheel_limit: u64,
    /// Events in wheel buckets (the outer levels hold `len - wheel_len`).
    wheel_len: usize,
    /// Coarse second level for events past `wheel_limit`, within ~4.66 h.
    /// `None` until an event first lands there.
    level2: Option<Box<Level2<E>>>,
    /// Events due at or after the second level's limit, in per-instant
    /// FIFO deques.
    overflow: BTreeMap<u64, VecDeque<E>>,
    /// Emptied overflow deques kept for reuse.
    spare: Vec<VecDeque<E>>,
    /// Total pending events across both levels.
    len: usize,
    now: Timestamp,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            buckets: (0..WHEEL).map(|_| VecDeque::new()).collect(),
            occupied: [0; WORDS],
            window_start: 0,
            wheel_limit: WHEEL as u64,
            wheel_len: 0,
            level2: None,
            overflow: BTreeMap::new(),
            spare: Vec::new(),
            len: 0,
            now: Timestamp::ZERO,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current virtual time (time of the last popped event).
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate heap footprint in bytes: bucket, second-level and
    /// overflow deque capacities times the element size. Retained (not
    /// just occupied) capacity is what a resident home pins in memory,
    /// so this is the number the service runner's eviction accounting
    /// wants — a freshly recycled queue still reports its full bucket
    /// arrays.
    pub fn approx_bytes(&self) -> usize {
        let elem = std::mem::size_of::<E>();
        let deque = std::mem::size_of::<VecDeque<E>>();
        let mut bytes = std::mem::size_of::<Self>();
        bytes += self.buckets.capacity() * deque;
        bytes += self.buckets.iter().map(VecDeque::capacity).sum::<usize>() * elem;
        if let Some(l2) = &self.level2 {
            bytes += std::mem::size_of::<Level2<E>>();
            bytes += l2.buckets.capacity() * deque;
            bytes += l2.buckets.iter().map(VecDeque::capacity).sum::<usize>() * (elem + 8);
        }
        for dq in self.overflow.values().chain(self.spare.iter()) {
            bytes += deque + dq.capacity() * elem;
        }
        bytes
    }

    /// Empties the queue and resets the clock to zero, retaining bucket
    /// and deque allocations so a recycled queue schedules and pops
    /// without allocating. Used by the harness's per-thread queue pool.
    pub fn clear(&mut self) {
        if self.wheel_len > 0 {
            for b in &mut self.buckets {
                b.clear();
            }
        }
        if let Some(l2) = &mut self.level2 {
            l2.clear();
        }
        for (_, mut dq) in std::mem::take(&mut self.overflow) {
            dq.clear();
            self.spare.push(dq);
        }
        self.occupied = [0; WORDS];
        self.window_start = 0;
        self.wheel_limit = WHEEL as u64;
        self.wheel_len = 0;
        self.len = 0;
        self.now = Timestamp::ZERO;
    }

    /// Schedules `payload` at time `at` (clamped to now if in the past).
    pub fn schedule(&mut self, at: Timestamp, payload: E) {
        let at = at.max(self.now).as_millis();
        self.len += 1;
        if at >= self.wheel_limit && self.wheel_len == 0 {
            // Empty wheel: slide the window up to the clock so the event
            // lands on the wheel path when it fits. Every pending event
            // is in an outer level and at or after `now`, so capping the
            // limit at the earliest parked instant (the lower bound of
            // the earliest coarse bucket, or the first overflow key)
            // keeps the split invariants (an equal-time event must
            // *stay* behind the parked one, hence the cap is exclusive).
            let first_parked = self.first_parked_instant();
            self.window_start = self.now.as_millis();
            self.wheel_limit = (self.window_start + WHEEL as u64).min(first_parked);
        }
        if at < self.wheel_limit {
            let b = (at & WHEEL_MASK) as usize;
            self.buckets[b].push_back(payload);
            self.occupied[b / 64] |= 1 << (b % 64);
            self.wheel_len += 1;
            return;
        }
        // Second level. Re-anchor its window whenever it sits empty: the
        // slide above guarantees `wheel_limit >= now` here, and while
        // the level holds events its window (and limit) never move, so
        // "every second-level event < its limit <= every overflow key"
        // holds for the level's whole occupancy — an instant's events
        // can never straddle the level-2/overflow split.
        let first_over = self.overflow.keys().next().copied().unwrap_or(u64::MAX);
        let l2 = self.level2.get_or_insert_with(|| Box::new(Level2::new()));
        if l2.len == 0 {
            l2.start = self.wheel_limit & !WHEEL_MASK;
            l2.limit = (l2.start + L2_SPAN).min(first_over);
        }
        if at < l2.limit {
            let b = ((at >> L2_SHIFT) & L2_IDX_MASK) as usize;
            l2.buckets[b].push_back((at, payload));
            l2.occupied[b / 64] |= 1 << (b % 64);
            l2.len += 1;
        } else {
            self.overflow
                .entry(at)
                .or_insert_with(|| self.spare.pop().unwrap_or_default())
                .push_back(payload);
        }
    }

    /// Lower bound on the earliest event parked outside the near wheel
    /// (`u64::MAX` when both outer levels are empty). Used as the
    /// exclusive cap for window slides.
    fn first_parked_instant(&self) -> u64 {
        let l2_first = self
            .level2
            .as_ref()
            .filter(|l2| l2.len > 0)
            .and_then(|l2| l2.first_span_start())
            .unwrap_or(u64::MAX);
        let over_first = self.overflow.keys().next().copied().unwrap_or(u64::MAX);
        l2_first.min(over_first)
    }

    /// Pops the next event and advances the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Timestamp, E)> {
        if self.len == 0 {
            return None;
        }
        if self.wheel_len == 0 {
            self.rebase();
        }
        let from = self.window_start.max(self.now.as_millis());
        let b = self
            .next_occupied(from)
            .expect("len > 0 and wheel non-empty after rebase");
        // Each residue occurs once in the window, so the cyclic distance
        // from `from` to the bucket recovers the event's instant.
        let at = from + ((b as u64).wrapping_sub(from) & WHEEL_MASK);
        let payload = self.buckets[b].pop_front().expect("occupied bit set");
        if self.buckets[b].is_empty() {
            self.occupied[b / 64] &= !(1 << (b % 64));
        }
        self.wheel_len -= 1;
        self.len -= 1;
        debug_assert!(at >= self.now.as_millis(), "virtual time went backwards");
        self.now = Timestamp::from_millis(at);
        Some((self.now, payload))
    }

    /// Timestamp of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<Timestamp> {
        if self.len == 0 {
            return None;
        }
        if self.wheel_len == 0 {
            if let Some(l2) = self.level2.as_ref().filter(|l2| l2.len > 0) {
                // The earliest coarse bucket mixes instants in insertion
                // order, so the minimum needs a scan of that one bucket;
                // every second-level event precedes every overflow one.
                let b = l2.first_bucket().expect("len > 0");
                let min = l2.buckets[b]
                    .iter()
                    .map(|&(at, _)| at)
                    .min()
                    .expect("occupied bit set");
                return Some(Timestamp::from_millis(min));
            }
            return self
                .overflow
                .keys()
                .next()
                .map(|&ms| Timestamp::from_millis(ms));
        }
        let from = self.window_start.max(self.now.as_millis());
        let b = self.next_occupied(from).expect("wheel_len > 0");
        Some(Timestamp::from_millis(
            from + ((b as u64).wrapping_sub(from) & WHEEL_MASK),
        ))
    }

    /// Moves the window onto the earliest pending instant's span and
    /// migrates every newly covered event into its per-millisecond
    /// bucket. Only called with an empty wheel.
    ///
    /// With second-level events pending, the earliest pending event is
    /// in the earliest occupied coarse bucket (every second-level event
    /// precedes every overflow one), whose span is exactly one wheel
    /// period: the window adopts that span, the bucket drains in
    /// insertion order (restoring per-instant FIFO as entries land in
    /// single-instant buckets), and any overflow events the new window
    /// covers — possible when the second level's limit was capped
    /// mid-span by a parked overflow instant — migrate on top. An
    /// instant's events never straddle the level-2/overflow split (see
    /// [`EventQueue::schedule`]), so the two sources never interleave
    /// within one instant and the drain order is safe.
    ///
    /// With no second-level events, the window rebases onto the earliest
    /// overflow instant; `BTreeMap` iteration order (time, then
    /// insertion) lands migrated events in exactly the order the old
    /// sorted heap would have popped them.
    fn rebase(&mut self) {
        if let Some(l2) = self.level2.as_mut().filter(|l2| l2.len > 0) {
            let b = l2.first_bucket().expect("len > 0");
            let base = (l2.start >> L2_SHIFT) & L2_IDX_MASK;
            let dist = (b as u64).wrapping_sub(base) & L2_IDX_MASK;
            let span_start = l2.start + (dist << L2_SHIFT);
            self.window_start = span_start;
            self.wheel_limit = span_start + WHEEL as u64;
            let mut dq = std::mem::take(&mut l2.buckets[b]);
            l2.occupied[b / 64] &= !(1 << (b % 64));
            l2.len -= dq.len();
            for (at, payload) in dq.drain(..) {
                debug_assert!(
                    at >= span_start && at < self.wheel_limit,
                    "second-level bucket held an instant outside its span"
                );
                let wb = (at & WHEEL_MASK) as usize;
                self.buckets[wb].push_back(payload);
                self.occupied[wb / 64] |= 1 << (wb % 64);
                self.wheel_len += 1;
            }
            // Hand the drained deque's allocation back to the bucket.
            l2.buckets[b] = dq;
        } else {
            let &start = self
                .overflow
                .keys()
                .next()
                .expect("rebase called with pending events");
            self.window_start = start;
            self.wheel_limit = start + WHEEL as u64;
        }
        self.migrate_overflow_into_window();
    }

    /// Migrates every overflow event earlier than `wheel_limit` into its
    /// wheel bucket, in time order.
    fn migrate_overflow_into_window(&mut self) {
        while let Some(entry) = self.overflow.first_entry() {
            if *entry.key() >= self.wheel_limit {
                break;
            }
            let (at, mut dq) = entry.remove_entry();
            let b = (at & WHEEL_MASK) as usize;
            self.wheel_len += dq.len();
            if self.buckets[b].capacity() == 0 {
                // First use of this bucket: adopt the overflow deque's
                // allocation instead of growing an empty one.
                self.buckets[b] = dq;
            } else {
                self.buckets[b].append(&mut dq);
                self.spare.push(dq);
            }
            self.occupied[b / 64] |= 1 << (b % 64);
        }
    }

    /// First occupied bucket at cyclic distance `>= 0` from instant
    /// `from`, scanning the full wheel once via the occupancy bitmap.
    fn next_occupied(&self, from: u64) -> Option<usize> {
        next_occupied_bit(&self.occupied, (from & WHEEL_MASK) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(42), ());
        assert_eq!(q.now(), Timestamp::ZERO);
        q.pop();
        assert_eq!(q.now(), t(42));
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut q = EventQueue::new();
        q.schedule(t(100), "late");
        q.pop();
        q.schedule(t(10), "early"); // in the past now
        assert_eq!(q.pop(), Some((t(100), "early")));
    }

    #[test]
    fn clamped_event_pops_after_events_already_queued_at_now() {
        // A past event is clamped to `now`, and the seq tiebreak must
        // then place it *behind* everything already queued at `now`: the
        // backlog drains in the order it was enqueued, clamping never
        // lets a stale event jump a fresh one.
        let mut q = EventQueue::new();
        q.schedule(t(100), "tick");
        q.pop(); // now = 100
        q.schedule(t(100), "first");
        q.schedule(t(100), "second");
        q.schedule(t(40), "stale"); // clamped to now = 100
        q.schedule(t(100), "third");
        assert_eq!(q.pop(), Some((t(100), "first")));
        assert_eq!(q.pop(), Some((t(100), "second")));
        assert_eq!(
            q.pop(),
            Some((t(100), "stale")),
            "clamped event keeps its insertion rank at the clamped instant"
        );
        assert_eq!(q.pop(), Some((t(100), "third")));
        assert_eq!(q.now(), t(100));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(t(9), ());
        assert_eq!(q.peek_time(), Some(t(9)));
        assert_eq!(q.now(), Timestamp::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1);
        q.schedule(t(50), 5);
        assert_eq!(q.pop(), Some((t(10), 1)));
        q.schedule(t(30), 3);
        q.schedule(t(20), 2);
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), Some((t(50), 5)));
    }

    #[test]
    fn far_future_events_cross_the_overflow_level() {
        // Events far beyond the wheel's horizon park in the overflow
        // level and migrate in on rebase, FIFO order intact.
        let mut q = EventQueue::new();
        let far = WHEEL as u64 * 10;
        for i in 0..5 {
            q.schedule(t(far), i);
        }
        q.schedule(t(far + WHEEL as u64 + 1), 99);
        q.schedule(t(3), -1);
        assert_eq!(q.pop(), Some((t(3), -1)));
        assert_eq!(q.peek_time(), Some(t(far)), "peek reads overflow");
        for i in 0..5 {
            assert_eq!(q.pop(), Some((t(far), i)));
        }
        assert_eq!(q.pop(), Some((t(far + WHEEL as u64 + 1), 99)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_instant_fifo_survives_migration() {
        // An event lands in overflow, migrates into the wheel on rebase,
        // and a *later-scheduled* event at the same instant must still
        // pop behind it.
        let mut q = EventQueue::new();
        let at = WHEEL as u64 + 500;
        q.schedule(t(at), "early-seq");
        q.schedule(t(1), "opener");
        assert_eq!(q.pop(), Some((t(1), "opener")));
        // Still before the rebase: `at` stays in overflow.
        q.schedule(t(at), "mid-seq");
        assert_eq!(q.pop(), Some((t(at), "early-seq")));
        q.schedule(t(at), "late-seq");
        assert_eq!(q.pop(), Some((t(at), "mid-seq")));
        assert_eq!(q.pop(), Some((t(at), "late-seq")));
    }

    #[test]
    fn slide_keeps_periodic_rescheduling_ordered() {
        // The probe-loop pattern: each pop reschedules `interval` ahead.
        // The window slides instead of rebasing, and order must hold
        // across thousands of wrap-arounds.
        let interval = 1_000u64;
        let mut q = EventQueue::new();
        for d in 0..7u64 {
            q.schedule(t(d * 37), d);
        }
        let mut last = 0u64;
        for _ in 0..10_000 {
            let (at, d) = q.pop().expect("loop never drains");
            assert!(at.as_millis() >= last, "time went backwards");
            last = at.as_millis();
            q.schedule(t(at.as_millis() + interval), d);
        }
        assert_eq!(q.len(), 7);
    }

    #[test]
    fn slide_cannot_jump_parked_overflow_events() {
        // Regression for the window slide: with an event parked in
        // overflow, a slide must cap the wheel limit so a later, *later-
        // scheduled* event at or before the parked instant cannot pop
        // first.
        let mut q = EventQueue::new();
        let far = WHEEL as u64 * 3 + 17;
        q.schedule(t(10), "opener");
        q.schedule(t(far), "parked-early-seq");
        assert_eq!(q.pop(), Some((t(10), "opener")));
        // Wheel is now empty; this schedule slides the window.
        q.schedule(t(far), "parked-late-seq");
        q.schedule(t(far - 1), "just-before");
        assert_eq!(q.pop(), Some((t(far - 1), "just-before")));
        assert_eq!(q.pop(), Some((t(far), "parked-early-seq")));
        assert_eq!(q.pop(), Some((t(far), "parked-late-seq")));
    }

    #[test]
    fn window_edge_events_stay_ordered() {
        // Events exactly at the first instant past the window boundary.
        let mut q = EventQueue::new();
        q.schedule(t(WHEEL as u64 - 1), "in-window");
        q.schedule(t(WHEEL as u64), "past-window");
        q.schedule(t(0), "now");
        assert_eq!(q.pop(), Some((t(0), "now")));
        assert_eq!(q.pop(), Some((t(WHEEL as u64 - 1), "in-window")));
        assert_eq!(q.pop(), Some((t(WHEEL as u64), "past-window")));
    }

    #[test]
    fn clear_resets_and_retains_capacity() {
        let mut q = EventQueue::new();
        for i in 0..100u64 {
            q.schedule(t(i * 137), i);
        }
        q.pop();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.now(), Timestamp::ZERO);
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.pop(), None);
        // Fully usable after the reset.
        q.schedule(t(7), 1);
        q.schedule(t(3), 0);
        assert_eq!(q.pop(), Some((t(3), 0)));
        assert_eq!(q.pop(), Some((t(7), 1)));
    }

    #[test]
    fn level2_bucket_mixing_instants_pops_in_time_order() {
        // One coarse second-level bucket holds several instants in
        // insertion (not time) order; the drain into per-millisecond
        // buckets must restore time order, and peek must report the true
        // minimum, not the first-inserted entry.
        let mut q = EventQueue::new();
        let span = WHEEL as u64; // second-level buckets are one period wide
        q.schedule(t(span + 900), "later");
        q.schedule(t(span + 100), "earlier");
        q.schedule(t(span + 900), "later-2");
        assert_eq!(q.peek_time(), Some(t(span + 100)), "peek scans the bucket");
        assert_eq!(q.pop(), Some((t(span + 100), "earlier")));
        assert_eq!(q.pop(), Some((t(span + 900), "later")));
        assert_eq!(q.pop(), Some((t(span + 900), "later-2")));
    }

    #[test]
    fn events_exactly_at_level1_level2_edge_stay_ordered() {
        // The promote/demote boundary: with the wheel non-empty, an
        // event at exactly `wheel_limit` is the first instant of the
        // second level, and equal-time events scheduled before and after
        // the rebase that promotes it must pop in insertion order.
        let mut q = EventQueue::new();
        let edge = WHEEL as u64; // wheel_limit for a fresh queue
        q.schedule(t(edge - 1), "last-in-window");
        q.schedule(t(edge), "first-past-a");
        q.schedule(t(edge), "first-past-b");
        assert_eq!(q.pop(), Some((t(edge - 1), "last-in-window")));
        // Rebase promoted the edge instant into the wheel; a fresh
        // equal-time event now targets the level-1 bucket directly and
        // must still pop behind the promoted ones.
        q.schedule(t(edge), "first-past-c");
        assert_eq!(q.pop(), Some((t(edge), "first-past-a")));
        assert_eq!(q.pop(), Some((t(edge), "first-past-b")));
        assert_eq!(q.pop(), Some((t(edge), "first-past-c")));
    }

    #[test]
    fn events_exactly_at_level2_overflow_edge_stay_ordered() {
        // An event parked in the overflow map caps a later second-level
        // re-anchor *exclusively*, so an equal-time event scheduled
        // afterwards joins the overflow level behind it instead of
        // jumping ahead through a coarse bucket.
        let mut q = EventQueue::new();
        let far = L2_SPAN * 2 + 12_345; // beyond any level-2 window
        q.schedule(t(far), "parked-early");
        // Re-anchors level 2 (empty) with limit capped at `far`.
        q.schedule(t(far), "parked-late");
        q.schedule(t(far - 1), "just-before");
        assert_eq!(q.pop(), Some((t(far - 1), "just-before")));
        assert_eq!(q.pop(), Some((t(far), "parked-early")));
        assert_eq!(q.pop(), Some((t(far), "parked-late")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn clamp_to_now_ordering_survives_level2_promotion() {
        // Events queued at a far instant cross the second level; once
        // the clock reaches that instant, a stale (clamped) event must
        // still pop behind everything already queued there and ahead of
        // anything queued later — the clamp contract is unchanged by the
        // extra level.
        let mut q = EventQueue::new();
        let at = WHEEL as u64 * 5 + 77;
        q.schedule(t(at), "promoted-a");
        q.schedule(t(0), "opener");
        assert_eq!(q.pop(), Some((t(0), "opener")));
        assert_eq!(q.pop(), Some((t(at), "promoted-a"))); // now = at
        q.schedule(t(at), "fresh");
        q.schedule(t(3), "stale"); // clamped to now = at
        q.schedule(t(at), "freshest");
        assert_eq!(q.pop(), Some((t(at), "fresh")));
        assert_eq!(q.pop(), Some((t(at), "stale")));
        assert_eq!(q.pop(), Some((t(at), "freshest")));
    }

    #[test]
    fn hours_long_horizon_stress_matches_sorted_order() {
        // Deterministic pseudo-random events spread over ~2.5 second-
        // level rotations (~11.6 h of virtual time), so every level —
        // near wheel, coarse buckets, overflow map — and every promotion
        // path is exercised against a straight stable sort.
        let mut q = EventQueue::new();
        let mut expected: Vec<(u64, u32)> = Vec::new();
        let mut x = 0x5AFE_5EEDu64;
        for i in 0..800u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let at = x % (L2_SPAN * 5 / 2);
            q.schedule(t(at), i);
            expected.push((at, i));
        }
        expected.sort_by_key(|&(at, i)| (at, i));
        for (at, i) in expected {
            assert_eq!(q.pop(), Some((t(at), i)));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn periodic_rescheduling_with_hour_scale_interval_stays_ordered() {
        // The service-mode timer-wheel pattern: per-home next-event
        // times rescheduled tens of minutes ahead, far past the near
        // wheel but within the second level.
        let interval = 37 * 60 * 1_000u64; // 37 min, < L2_SPAN
        let mut q = EventQueue::new();
        for d in 0..5u64 {
            q.schedule(t(d * 13_331), d);
        }
        let mut last = 0u64;
        for _ in 0..2_000 {
            let (at, d) = q.pop().expect("loop never drains");
            assert!(at.as_millis() >= last, "time went backwards");
            last = at.as_millis();
            q.schedule(t(at.as_millis() + interval), d);
        }
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn dense_mixed_horizon_stress_matches_sorted_order() {
        // A deterministic pseudo-random mix of near and far events,
        // popped against a straight stable sort of (time, seq).
        let mut q = EventQueue::new();
        let mut expected: Vec<(u64, u32)> = Vec::new();
        let mut x = 0x9E37_79B9u64;
        for i in 0..500u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let at = x % (WHEEL as u64 * 3);
            q.schedule(t(at), i);
            expected.push((at, i));
        }
        expected.sort_by_key(|&(at, i)| (at, i));
        for (at, i) in expected {
            assert_eq!(q.pop(), Some((t(at), i)));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_instant_pop_and_park_across_independent_wheels() {
        // Steal-era shape: two shard wheels hold entries due at the same
        // instant. A thief pops shard B's entry while the owner pops
        // shard A's, then both re-park at the same future instant. The
        // wheels are independent, so each must preserve its own FIFO and
        // neither may observe the other's clock.
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        a.schedule(t(500), "a0");
        a.schedule(t(500), "a1");
        b.schedule(t(500), "b0");
        assert_eq!(a.pop(), Some((t(500), "a0")));
        assert_eq!(b.pop(), Some((t(500), "b0")));
        // Both re-park at the same boundary instant; per-wheel insertion
        // order still rules.
        a.schedule(t(1_000), "a0");
        b.schedule(t(1_000), "b0");
        a.schedule(t(1_000), "a2");
        assert_eq!(a.pop(), Some((t(500), "a1")));
        assert_eq!(a.pop(), Some((t(1_000), "a0")));
        assert_eq!(a.pop(), Some((t(1_000), "a2")));
        assert_eq!(b.pop(), Some((t(1_000), "b0")));
        assert_eq!(a.now(), t(1_000));
        assert_eq!(b.now(), t(1_000));
    }

    #[test]
    fn l2_entry_stolen_mid_span_leaves_siblings_ordered() {
        // Entries parked far ahead share one coarse second-level bucket
        // (same WHEEL-ms span). A steal pops the earliest — which drains
        // and rebases the span — and re-parks it further out; the
        // remaining same-span entries must still pop in time order, and
        // a re-park landing *back inside* the active span must slot in
        // correctly rather than ride behind the span's tail.
        let base = WHEEL as u64 * 3; // comfortably on the second level
        let mut q = EventQueue::new();
        q.schedule(t(base + 10), "early");
        q.schedule(t(base + 30), "late");
        q.schedule(t(base + 20), "mid");
        assert_eq!(q.pop(), Some((t(base + 10), "early")));
        // Stolen home re-parks inside the still-active span.
        q.schedule(t(base + 25), "early");
        assert_eq!(q.pop(), Some((t(base + 20), "mid")));
        assert_eq!(q.pop(), Some((t(base + 25), "early")));
        assert_eq!(q.pop(), Some((t(base + 30), "late")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn clamp_to_now_after_recovered_repark_keeps_service_order() {
        // A thief advancing a shard wheel past another home's true
        // next-event time forces that home's re-park to clamp to `now`.
        // The clamped entry must queue *behind* entries already parked
        // at `now` (FIFO) — and, because the clamp perturbs the wheel
        // timestamp, the service runner derives slice boundaries from
        // the home's own queue, never from the wheel's popped time. This
        // pins the wheel half of that contract.
        let mut q = EventQueue::new();
        q.schedule(t(2_000), "far"); // popped by the thief first
        assert_eq!(q.pop(), Some((t(2_000), "far")));
        q.schedule(t(2_000), "resident");
        // Recovered home's true next event is at t=700 — already in the
        // wheel's past. The park clamps to now=2000, behind "resident".
        q.schedule(t(700), "recovered");
        assert_eq!(q.pop(), Some((t(2_000), "resident")));
        let (at, who) = q.pop().expect("clamped entry is pending");
        assert_eq!(who, "recovered");
        assert_eq!(at, t(2_000), "the wheel time is the clamp, not t=700");
    }

    #[test]
    fn approx_bytes_tracks_retained_capacity() {
        let mut q: EventQueue<u64> = EventQueue::new();
        let fresh = q.approx_bytes();
        assert!(fresh > WHEEL * std::mem::size_of::<VecDeque<u64>>());
        for i in 0..10_000u64 {
            q.schedule(t(i * 7_919), i); // spans wheel, L2 and overflow
        }
        let loaded = q.approx_bytes();
        assert!(loaded > fresh, "deque growth must show up");
        while q.pop().is_some() {}
        q.clear();
        assert!(
            q.approx_bytes() >= fresh,
            "recycled queues keep their capacity — that is the point \
             of reporting retained rather than occupied bytes"
        );
    }
}
