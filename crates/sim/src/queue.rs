//! Virtual-time event queue.
//!
//! Implemented as a bucketed calendar queue (timing wheel): a near-future
//! wheel of per-millisecond FIFO buckets plus a sorted overflow level for
//! events beyond the wheel's horizon. The discrete-event hot loop
//! (`safehome-harness`) pops and schedules millions of events per second,
//! and the wheel turns both operations into O(1) deque pushes/pops with
//! no per-event comparisons — the previous inverted `BinaryHeap` paid
//! O(log n) sift costs and a comparator call per level on exactly that
//! path. The pop-order contract is unchanged (see [`EventQueue`]).

use std::collections::{BTreeMap, VecDeque};

use safehome_types::Timestamp;

/// Wheel width in buckets (= milliseconds of near-future horizon). One
/// bucket per millisecond keeps every bucket single-instant, so FIFO
/// order within a bucket *is* insertion order and no per-entry sequence
/// numbers are needed. Sized past the detector's probe interval (1 s) so
/// periodic probe rescheduling — the dominant event load of
/// failure-injecting runs — stays on the O(1) wheel path. Must be a
/// power of two.
const WHEEL: usize = 4096;
const WHEEL_MASK: u64 = (WHEEL as u64) - 1;
/// Occupancy-bitmap words for the wheel.
const WORDS: usize = WHEEL / 64;

/// A deterministic discrete-event queue.
///
/// Events pop in non-decreasing timestamp order; events scheduled for the
/// same instant pop in insertion order. Popping advances the queue's
/// clock, and scheduling an event in the past is clamped to `now` (this
/// matches how an edge hub would process a backlog: never before now).
///
/// # Structure
///
/// Two levels, both keyed by the event's due time:
///
/// - a **wheel** of `WHEEL` FIFO buckets covering the instants
///   `[window_start, wheel_limit)`, bucket `t & WHEEL_MASK` holding
///   exactly the events due at instant `t` (the window never spans more
///   than one full period, so the residue is unique within it), with an
///   occupancy bitmap for constant-time next-bucket scans;
/// - a sorted **overflow** level (`BTreeMap` of per-instant FIFO deques)
///   for events at or beyond `wheel_limit`.
///
/// Two invariants make the split correct: every wheel event is earlier
/// than every overflow event (so a pop can ignore the overflow while the
/// wheel is non-empty), and a bucket only ever holds one instant. The
/// window moves in two ways, both preserving same-instant FIFO order
/// across levels (an event can only change level before any
/// later-scheduled equal-time event targets the same bucket directly):
///
/// - when a pop finds the wheel empty, it rebases the window onto the
///   earliest overflow instant and migrates the newly covered events
///   into their buckets in time order;
/// - when a schedule finds the wheel empty and its event past
///   `wheel_limit`, it slides the window forward to start at `now` —
///   this is what keeps steady periodic work (e.g. probe loops
///   rescheduling `interval` ahead) on the wheel path instead of
///   bouncing through the overflow map.
///
/// Bucket and overflow deque allocations are recycled across
/// [`EventQueue::clear`] calls, so a pooled queue reaches steady state
/// with zero allocations per event.
///
/// # Examples
///
/// ```
/// use safehome_sim::EventQueue;
/// use safehome_types::Timestamp;
///
/// let mut q = EventQueue::new();
/// q.schedule(Timestamp::from_millis(20), "b");
/// q.schedule(Timestamp::from_millis(10), "a");
/// assert_eq!(q.pop(), Some((Timestamp::from_millis(10), "a")));
/// assert_eq!(q.now(), Timestamp::from_millis(10));
/// ```
pub struct EventQueue<E> {
    /// `buckets[t & WHEEL_MASK]` holds the events due at instant `t` for
    /// `t` within the current window, in insertion order.
    buckets: Vec<VecDeque<E>>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupied: [u64; WORDS],
    /// First instant covered by the wheel. `window_start <= now` between
    /// public calls except transiently inside [`EventQueue::pop`].
    window_start: u64,
    /// First instant *not* covered by the wheel: events at or past it go
    /// to the overflow level. At most `window_start + WHEEL`, and never
    /// past the earliest overflow instant (else a pop could take a wheel
    /// event that should sort after a parked overflow one).
    wheel_limit: u64,
    /// Events in wheel buckets (the overflow holds `len - wheel_len`).
    wheel_len: usize,
    /// Events due at or after `wheel_limit`, in per-instant FIFO deques.
    overflow: BTreeMap<u64, VecDeque<E>>,
    /// Emptied overflow deques kept for reuse.
    spare: Vec<VecDeque<E>>,
    /// Total pending events across both levels.
    len: usize,
    now: Timestamp,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            buckets: (0..WHEEL).map(|_| VecDeque::new()).collect(),
            occupied: [0; WORDS],
            window_start: 0,
            wheel_limit: WHEEL as u64,
            wheel_len: 0,
            overflow: BTreeMap::new(),
            spare: Vec::new(),
            len: 0,
            now: Timestamp::ZERO,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current virtual time (time of the last popped event).
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Empties the queue and resets the clock to zero, retaining bucket
    /// and deque allocations so a recycled queue schedules and pops
    /// without allocating. Used by the harness's per-thread queue pool.
    pub fn clear(&mut self) {
        if self.wheel_len > 0 {
            for b in &mut self.buckets {
                b.clear();
            }
        }
        for (_, mut dq) in std::mem::take(&mut self.overflow) {
            dq.clear();
            self.spare.push(dq);
        }
        self.occupied = [0; WORDS];
        self.window_start = 0;
        self.wheel_limit = WHEEL as u64;
        self.wheel_len = 0;
        self.len = 0;
        self.now = Timestamp::ZERO;
    }

    /// Schedules `payload` at time `at` (clamped to now if in the past).
    pub fn schedule(&mut self, at: Timestamp, payload: E) {
        let at = at.max(self.now).as_millis();
        self.len += 1;
        if at >= self.wheel_limit && self.wheel_len == 0 {
            // Empty wheel: slide the window up to the clock so the event
            // lands on the wheel path when it fits. Every pending event
            // is in the overflow and at or after `now`, so capping the
            // limit at the earliest overflow instant keeps both split
            // invariants (an equal-time event must *stay* behind the
            // parked one, hence the cap is exclusive).
            let first_parked = self.overflow.keys().next().copied().unwrap_or(u64::MAX);
            self.window_start = self.now.as_millis();
            self.wheel_limit = (self.window_start + WHEEL as u64).min(first_parked);
        }
        if at < self.wheel_limit {
            let b = (at & WHEEL_MASK) as usize;
            self.buckets[b].push_back(payload);
            self.occupied[b / 64] |= 1 << (b % 64);
            self.wheel_len += 1;
        } else {
            self.overflow
                .entry(at)
                .or_insert_with(|| self.spare.pop().unwrap_or_default())
                .push_back(payload);
        }
    }

    /// Pops the next event and advances the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Timestamp, E)> {
        if self.len == 0 {
            return None;
        }
        if self.wheel_len == 0 {
            self.rebase();
        }
        let from = self.window_start.max(self.now.as_millis());
        let b = self
            .next_occupied(from)
            .expect("len > 0 and wheel non-empty after rebase");
        // Each residue occurs once in the window, so the cyclic distance
        // from `from` to the bucket recovers the event's instant.
        let at = from + ((b as u64).wrapping_sub(from) & WHEEL_MASK);
        let payload = self.buckets[b].pop_front().expect("occupied bit set");
        if self.buckets[b].is_empty() {
            self.occupied[b / 64] &= !(1 << (b % 64));
        }
        self.wheel_len -= 1;
        self.len -= 1;
        debug_assert!(at >= self.now.as_millis(), "virtual time went backwards");
        self.now = Timestamp::from_millis(at);
        Some((self.now, payload))
    }

    /// Timestamp of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<Timestamp> {
        if self.len == 0 {
            return None;
        }
        if self.wheel_len == 0 {
            return self
                .overflow
                .keys()
                .next()
                .map(|&ms| Timestamp::from_millis(ms));
        }
        let from = self.window_start.max(self.now.as_millis());
        let b = self.next_occupied(from).expect("wheel_len > 0");
        Some(Timestamp::from_millis(
            from + ((b as u64).wrapping_sub(from) & WHEEL_MASK),
        ))
    }

    /// Moves the window onto the earliest overflow instant and migrates
    /// every newly covered event into its bucket. Only called with an
    /// empty wheel, so every target bucket is empty and `BTreeMap`
    /// iteration order (time, then insertion) lands migrated events in
    /// exactly the order the old sorted heap would have popped them.
    fn rebase(&mut self) {
        let &start = self
            .overflow
            .keys()
            .next()
            .expect("rebase called with pending overflow events");
        self.window_start = start;
        self.wheel_limit = start + WHEEL as u64;
        while let Some(entry) = self.overflow.first_entry() {
            if *entry.key() >= self.wheel_limit {
                break;
            }
            let (at, mut dq) = entry.remove_entry();
            let b = (at & WHEEL_MASK) as usize;
            debug_assert!(self.buckets[b].is_empty(), "bucket collision on rebase");
            self.wheel_len += dq.len();
            if self.buckets[b].capacity() == 0 {
                // First use of this bucket: adopt the overflow deque's
                // allocation instead of growing an empty one.
                self.buckets[b] = dq;
            } else {
                self.buckets[b].append(&mut dq);
                self.spare.push(dq);
            }
            self.occupied[b / 64] |= 1 << (b % 64);
        }
    }

    /// First occupied bucket at cyclic distance `>= 0` from instant
    /// `from`, scanning the full wheel once via the occupancy bitmap.
    fn next_occupied(&self, from: u64) -> Option<usize> {
        let s = (from & WHEEL_MASK) as usize;
        // Word containing `s`, masked to bits at/after it.
        let mut w = s / 64;
        let mut word = self.occupied[w] & (!0u64 << (s % 64));
        for _ in 0..=WORDS {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w = (w + 1) % WORDS;
            word = self.occupied[w];
            if w == s / 64 {
                // Wrapped: finish with the bits before `s`.
                word &= !(!0u64 << (s % 64));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(42), ());
        assert_eq!(q.now(), Timestamp::ZERO);
        q.pop();
        assert_eq!(q.now(), t(42));
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut q = EventQueue::new();
        q.schedule(t(100), "late");
        q.pop();
        q.schedule(t(10), "early"); // in the past now
        assert_eq!(q.pop(), Some((t(100), "early")));
    }

    #[test]
    fn clamped_event_pops_after_events_already_queued_at_now() {
        // A past event is clamped to `now`, and the seq tiebreak must
        // then place it *behind* everything already queued at `now`: the
        // backlog drains in the order it was enqueued, clamping never
        // lets a stale event jump a fresh one.
        let mut q = EventQueue::new();
        q.schedule(t(100), "tick");
        q.pop(); // now = 100
        q.schedule(t(100), "first");
        q.schedule(t(100), "second");
        q.schedule(t(40), "stale"); // clamped to now = 100
        q.schedule(t(100), "third");
        assert_eq!(q.pop(), Some((t(100), "first")));
        assert_eq!(q.pop(), Some((t(100), "second")));
        assert_eq!(
            q.pop(),
            Some((t(100), "stale")),
            "clamped event keeps its insertion rank at the clamped instant"
        );
        assert_eq!(q.pop(), Some((t(100), "third")));
        assert_eq!(q.now(), t(100));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(t(9), ());
        assert_eq!(q.peek_time(), Some(t(9)));
        assert_eq!(q.now(), Timestamp::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1);
        q.schedule(t(50), 5);
        assert_eq!(q.pop(), Some((t(10), 1)));
        q.schedule(t(30), 3);
        q.schedule(t(20), 2);
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), Some((t(50), 5)));
    }

    #[test]
    fn far_future_events_cross_the_overflow_level() {
        // Events far beyond the wheel's horizon park in the overflow
        // level and migrate in on rebase, FIFO order intact.
        let mut q = EventQueue::new();
        let far = WHEEL as u64 * 10;
        for i in 0..5 {
            q.schedule(t(far), i);
        }
        q.schedule(t(far + WHEEL as u64 + 1), 99);
        q.schedule(t(3), -1);
        assert_eq!(q.pop(), Some((t(3), -1)));
        assert_eq!(q.peek_time(), Some(t(far)), "peek reads overflow");
        for i in 0..5 {
            assert_eq!(q.pop(), Some((t(far), i)));
        }
        assert_eq!(q.pop(), Some((t(far + WHEEL as u64 + 1), 99)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_instant_fifo_survives_migration() {
        // An event lands in overflow, migrates into the wheel on rebase,
        // and a *later-scheduled* event at the same instant must still
        // pop behind it.
        let mut q = EventQueue::new();
        let at = WHEEL as u64 + 500;
        q.schedule(t(at), "early-seq");
        q.schedule(t(1), "opener");
        assert_eq!(q.pop(), Some((t(1), "opener")));
        // Still before the rebase: `at` stays in overflow.
        q.schedule(t(at), "mid-seq");
        assert_eq!(q.pop(), Some((t(at), "early-seq")));
        q.schedule(t(at), "late-seq");
        assert_eq!(q.pop(), Some((t(at), "mid-seq")));
        assert_eq!(q.pop(), Some((t(at), "late-seq")));
    }

    #[test]
    fn slide_keeps_periodic_rescheduling_ordered() {
        // The probe-loop pattern: each pop reschedules `interval` ahead.
        // The window slides instead of rebasing, and order must hold
        // across thousands of wrap-arounds.
        let interval = 1_000u64;
        let mut q = EventQueue::new();
        for d in 0..7u64 {
            q.schedule(t(d * 37), d);
        }
        let mut last = 0u64;
        for _ in 0..10_000 {
            let (at, d) = q.pop().expect("loop never drains");
            assert!(at.as_millis() >= last, "time went backwards");
            last = at.as_millis();
            q.schedule(t(at.as_millis() + interval), d);
        }
        assert_eq!(q.len(), 7);
    }

    #[test]
    fn slide_cannot_jump_parked_overflow_events() {
        // Regression for the window slide: with an event parked in
        // overflow, a slide must cap the wheel limit so a later, *later-
        // scheduled* event at or before the parked instant cannot pop
        // first.
        let mut q = EventQueue::new();
        let far = WHEEL as u64 * 3 + 17;
        q.schedule(t(10), "opener");
        q.schedule(t(far), "parked-early-seq");
        assert_eq!(q.pop(), Some((t(10), "opener")));
        // Wheel is now empty; this schedule slides the window.
        q.schedule(t(far), "parked-late-seq");
        q.schedule(t(far - 1), "just-before");
        assert_eq!(q.pop(), Some((t(far - 1), "just-before")));
        assert_eq!(q.pop(), Some((t(far), "parked-early-seq")));
        assert_eq!(q.pop(), Some((t(far), "parked-late-seq")));
    }

    #[test]
    fn window_edge_events_stay_ordered() {
        // Events exactly at the first instant past the window boundary.
        let mut q = EventQueue::new();
        q.schedule(t(WHEEL as u64 - 1), "in-window");
        q.schedule(t(WHEEL as u64), "past-window");
        q.schedule(t(0), "now");
        assert_eq!(q.pop(), Some((t(0), "now")));
        assert_eq!(q.pop(), Some((t(WHEEL as u64 - 1), "in-window")));
        assert_eq!(q.pop(), Some((t(WHEEL as u64), "past-window")));
    }

    #[test]
    fn clear_resets_and_retains_capacity() {
        let mut q = EventQueue::new();
        for i in 0..100u64 {
            q.schedule(t(i * 137), i);
        }
        q.pop();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.now(), Timestamp::ZERO);
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.pop(), None);
        // Fully usable after the reset.
        q.schedule(t(7), 1);
        q.schedule(t(3), 0);
        assert_eq!(q.pop(), Some((t(3), 0)));
        assert_eq!(q.pop(), Some((t(7), 1)));
    }

    #[test]
    fn dense_mixed_horizon_stress_matches_sorted_order() {
        // A deterministic pseudo-random mix of near and far events,
        // popped against a straight stable sort of (time, seq).
        let mut q = EventQueue::new();
        let mut expected: Vec<(u64, u32)> = Vec::new();
        let mut x = 0x9E37_79B9u64;
        for i in 0..500u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let at = x % (WHEEL as u64 * 3);
            q.schedule(t(at), i);
            expected.push((at, i));
        }
        expected.sort_by_key(|&(at, i)| (at, i));
        for (at, i) in expected {
            assert_eq!(q.pop(), Some((t(at), i)));
        }
        assert_eq!(q.pop(), None);
    }
}
