//! Virtual-time event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use safehome_types::Timestamp;

/// One scheduled entry: payload `E` due at `at`, with an insertion
/// sequence number that breaks ties FIFO.
struct Entry<E> {
    at: Timestamp,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // with FIFO order among simultaneous events.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic discrete-event queue.
///
/// Events pop in non-decreasing timestamp order; events scheduled for the
/// same instant pop in insertion order. Popping advances the queue's
/// clock, and scheduling an event in the past is clamped to `now` (this
/// matches how an edge hub would process a backlog: never before now).
///
/// # Examples
///
/// ```
/// use safehome_sim::EventQueue;
/// use safehome_types::Timestamp;
///
/// let mut q = EventQueue::new();
/// q.schedule(Timestamp::from_millis(20), "b");
/// q.schedule(Timestamp::from_millis(10), "a");
/// assert_eq!(q.pop(), Some((Timestamp::from_millis(10), "a")));
/// assert_eq!(q.now(), Timestamp::from_millis(10));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Timestamp,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Timestamp::ZERO,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current virtual time (time of the last popped event).
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at time `at` (clamped to now if in the past).
    pub fn schedule(&mut self, at: Timestamp, payload: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Pops the next event and advances the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Timestamp, E)> {
        let e = self.heap.pop()?;
        debug_assert!(e.at >= self.now, "virtual time went backwards");
        self.now = e.at;
        Some((e.at, e.payload))
    }

    /// Timestamp of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<Timestamp> {
        self.heap.peek().map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(42), ());
        assert_eq!(q.now(), Timestamp::ZERO);
        q.pop();
        assert_eq!(q.now(), t(42));
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut q = EventQueue::new();
        q.schedule(t(100), "late");
        q.pop();
        q.schedule(t(10), "early"); // in the past now
        assert_eq!(q.pop(), Some((t(100), "early")));
    }

    #[test]
    fn clamped_event_pops_after_events_already_queued_at_now() {
        // A past event is clamped to `now`, and the seq tiebreak must
        // then place it *behind* everything already queued at `now`: the
        // backlog drains in the order it was enqueued, clamping never
        // lets a stale event jump a fresh one.
        let mut q = EventQueue::new();
        q.schedule(t(100), "tick");
        q.pop(); // now = 100
        q.schedule(t(100), "first");
        q.schedule(t(100), "second");
        q.schedule(t(40), "stale"); // clamped to now = 100
        q.schedule(t(100), "third");
        assert_eq!(q.pop(), Some((t(100), "first")));
        assert_eq!(q.pop(), Some((t(100), "second")));
        assert_eq!(
            q.pop(),
            Some((t(100), "stale")),
            "clamped event keeps its insertion rank at the clamped instant"
        );
        assert_eq!(q.pop(), Some((t(100), "third")));
        assert_eq!(q.now(), t(100));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(t(9), ());
        assert_eq!(q.peek_time(), Some(t(9)));
        assert_eq!(q.now(), Timestamp::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1);
        q.schedule(t(50), 5);
        assert_eq!(q.pop(), Some((t(10), 1)));
        q.schedule(t(30), 3);
        q.schedule(t(20), 2);
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), Some((t(50), 5)));
    }
}
