//! A minimal, dependency-free property-testing harness exposing the
//! subset of the `proptest` API this workspace's tests use.
//!
//! The containerized build has no access to crates.io, so the real
//! proptest cannot be vendored. This shim keeps the test sources
//! unchanged: strategies generate random values from a deterministic
//! per-test seed and each test body runs for a configured number of
//! cases. There is no shrinking — a failing case reports its seed and
//! case index instead, which is enough to reproduce deterministically.

use std::fmt::Debug;
use std::ops::Range;

/// Deterministic generator state (xoshiro256++ seeded via SplitMix64).
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
int_range_strategy!(u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection and option strategies, mirroring `proptest::prop`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies, mirroring `proptest::option`.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option`s that are `Some` about half the time.
    pub struct OptionStrategy<S>(S);

    /// Generates `None` or `Some(inner)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 1 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configures the number of cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Derives a deterministic seed for a test from its name, honoring
/// `PROPTEST_SEED` for reproduction.
pub fn seed_for(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(n) = s.parse() {
            return n;
        }
    }
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};

    /// Mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Asserts a condition inside a proptest body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a proptest body, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!("assertion failed: {:?} != {:?}", a, b));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!("{}: {:?} != {:?}", format!($($fmt)+), a, b));
        }
    }};
}

/// Declares property tests, proptest-style.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                let mut rng = $crate::TestRng::new(seed);
                for case in 0..cfg.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), String> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(msg) = outcome {
                        panic!(
                            "proptest {} failed at case {case} (seed {seed}): {msg}",
                            stringify!($name)
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0u32..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vec_lengths_respect_bounds(xs in prop::collection::vec(0u32..5, 1..6)) {
            prop_assert!(!xs.is_empty() && xs.len() < 6);
            prop_assert!(xs.iter().all(|&v| v < 5));
        }

        #[test]
        fn map_applies(total in prop::collection::vec(1u64..3, 2..3).prop_map(|v| v.len())) {
            prop_assert_eq!(total, 2);
        }

        #[test]
        fn options_generate_both(o in prop::option::of(0u64..10)) {
            if let Some(v) = o {
                prop_assert!(v < 10);
            }
        }
    }

    #[test]
    fn same_seed_reproduces() {
        let mut a = super::TestRng::new(9);
        let mut b = super::TestRng::new(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
