//! Component-level property tests: the Timeline planner, the JSON
//! routine spec, and the swap-distance metric.

use proptest::prelude::*;
use std::collections::BTreeMap;

use safehome::core::lineage::{LineageTable, LockAccess};
use safehome::core::order::OrderTracker;
use safehome::core::runtime::RoutineRun;
use safehome::core::sched::{apply_placement, timeline};
use safehome::metrics::normalized_swap_distance;
use safehome::prelude::*;
use safehome::types::spec::RoutineSpec;

fn routine_strategy(devices: u32) -> impl Strategy<Value = Routine> {
    prop::collection::vec((0..devices, 100u64..5_000), 1..6).prop_map(|cmds| {
        let mut b = Routine::builder("gen");
        for (d, ms) in cmds {
            b = b.set(DeviceId(d), Value::ON, TimeDelta::from_millis(ms));
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Timeline placements of arbitrary routine sequences keep every
    /// lineage invariant (including the strict-time form of invariant 1,
    /// since nothing executes here).
    #[test]
    fn timeline_placements_preserve_invariants(
        routines in prop::collection::vec(routine_strategy(5), 1..8)
    ) {
        let init: BTreeMap<DeviceId, Value> =
            (0..5).map(|i| (DeviceId(i), Value::OFF)).collect();
        let mut table = LineageTable::new(&init);
        let mut order = OrderTracker::new();
        let cfg = EngineConfig::new(VisibilityModel::ev());
        for (i, routine) in routines.into_iter().enumerate() {
            let id = RoutineId(i as u64 + 1);
            order.add_routine(id, Timestamp::ZERO);
            let run = RoutineRun::new(id, routine, Timestamp::ZERO);
            let p = timeline::place(&run, &table, &order, &cfg, Timestamp::ZERO, &|_, _| true, &[]);
            apply_placement(&mut table, &mut order, id, &p);
            prop_assert!(table.validate(true).is_ok(), "{:?}", table.validate(true));
        }
        // The accumulated order must be acyclic: the witness must include
        // all committed routines.
        prop_assert!(order.witness_order().is_empty()); // nothing committed yet
    }

    /// Gap search never proposes a slot that overlaps scheduled entries.
    #[test]
    fn gaps_never_overlap_entries(
        starts in prop::collection::vec(0u64..50_000, 0..10),
        not_before in 0u64..60_000
    ) {
        let init: BTreeMap<DeviceId, Value> = [(DeviceId(0), Value::OFF)].into();
        let mut table = LineageTable::new(&init);
        let mut sorted = starts;
        sorted.sort_unstable();
        sorted.dedup();
        let mut cursor = 0u64;
        for (i, s) in sorted.iter().enumerate() {
            let start = (*s).max(cursor);
            table.append(
                DeviceId(0),
                LockAccess::scheduled(
                    RoutineId(i as u64),
                    0,
                    Some(Value::ON),
                    Timestamp::from_millis(start),
                    TimeDelta::from_millis(500),
                ),
            );
            cursor = start + 500;
        }
        let entries: Vec<(u64, u64)> = table
            .lineage(DeviceId(0))
            .entries()
            .iter()
            .map(|e| (e.planned_start.as_millis(), e.planned_end().as_millis()))
            .collect();
        for gap in table.gaps(DeviceId(0), Timestamp::from_millis(not_before), false) {
            let gs = gap.start.as_millis();
            if let Some(ge) = gap.end {
                let ge = ge.as_millis();
                prop_assert!(gs <= ge);
                for &(es, ee) in &entries {
                    prop_assert!(ge <= es || gs >= ee, "gap [{gs},{ge}) overlaps entry [{es},{ee})");
                }
            }
        }
    }

    /// The JSON routine spec round-trips arbitrary routines.
    #[test]
    fn spec_round_trips(routine in routine_strategy(8)) {
        let spec = RoutineSpec::from_routine(&routine, |d| format!("dev{}", d.0));
        let json = spec.to_json();
        let parsed = RoutineSpec::from_json(&json).unwrap();
        let resolved = parsed
            .resolve(|name| name.strip_prefix("dev").and_then(|s| s.parse().ok()).map(DeviceId))
            .unwrap();
        prop_assert_eq!(resolved, routine);
    }

    /// Swap distance axioms: identity is 0, reversal is 1, symmetric
    /// under relabeling, bounded in [0, 1].
    #[test]
    fn swap_distance_axioms(n in 2usize..10) {
        let forward: Vec<RoutineId> = (1..=n as u64).map(RoutineId).collect();
        let backward: Vec<RoutineId> = (1..=n as u64).rev().map(RoutineId).collect();
        prop_assert_eq!(normalized_swap_distance(&forward), 0.0);
        prop_assert_eq!(normalized_swap_distance(&backward), 1.0);
    }

    #[test]
    fn swap_distance_bounded(perm in prop::collection::vec(1u64..20, 1..12)) {
        let mut ids: Vec<RoutineId> = perm.into_iter().map(RoutineId).collect();
        ids.dedup();
        let d = normalized_swap_distance(&ids);
        prop_assert!((0.0..=1.0).contains(&d));
    }
}

#[test]
fn facade_reexports_compose() {
    // A smoke test that the prelude exposes a workable API surface.
    let mut b = safehome::devices::Home::builder();
    let lamp = b.device("lamp", safehome::devices::DeviceKind::Light);
    let home = b.build();
    let mut spec = safehome::harness::RunSpec::new(home, EngineConfig::new(VisibilityModel::ev()));
    spec.submit(safehome::harness::Submission::at(
        Routine::builder("on")
            .set(lamp, Value::ON, TimeDelta::from_millis(100))
            .build(),
        Timestamp::ZERO,
    ));
    let out = safehome::harness::run(&spec);
    assert!(out.completed);
    assert_eq!(out.trace.end_states[&lamp], Value::ON);
}
