//! Property test: time-sliced resident execution is invisible.
//!
//! For random service fleets — home counts, fleet seeds, arrival rates,
//! horizons, burst windows, epoch lengths, worker counts, stealing
//! on/off and resident-budget choices — the resident time-sliced runner
//! (`run_service_with`) must reproduce the batch run-to-completion
//! fleet driver (`run_fleet`) byte for byte: same per-home
//! `RunCounters` (outcomes, latencies, digests), same fleet digest,
//! same slice count. Slicing a home's timeline at arbitrary epoch
//! boundaries, interleaving it with its shard neighbours, running its
//! slices on thieving workers, or collapsing it to its journal between
//! slices and replaying it back must never change which events it sees
//! or in what order.

use proptest::prelude::*;

use safehome::harness::{run_fleet, run_service_with, ServiceConfig};
use safehome::prelude::*;
use safehome::workloads::{
    service_home, skewed_service_home, FleetTemplate, ServiceParams, SkewParams,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn resident_sliced_run_matches_batch_fleet(
        homes in 2usize..8,
        fleet_seed in any::<u64>(),
        rate in 20u64..150,
        horizon_mins in 10u64..45,
        bursts in 0usize..3,
        epoch_choice in 0usize..4,
        workers in 1usize..5,
        steal in any::<bool>(),
        budget_choice in 0usize..4,
    ) {
        // From sub-event-grain slicing to epochs spanning many arrivals.
        let epoch_ms = [1u64, 777, 10_000, 300_000][epoch_choice];
        // No budget, evict-everything, and two partial budgets: random
        // evict points relative to each home's arrival clusters.
        let max_resident = [None, Some(0), Some(2), Some(5)][budget_choice];
        let template = FleetTemplate::morning(EngineConfig::new(VisibilityModel::ev()));
        let params = ServiceParams::new(TimeDelta::from_mins(horizon_mins), rate)
            .with_bursts_from_seed(fleet_seed, bursts);
        let make_spec = |_: usize, seed: u64| service_home(&template, &params, seed);

        let batch = run_fleet(homes, 1, fleet_seed, make_spec);
        let config = ServiceConfig {
            epoch: TimeDelta::from_millis(epoch_ms),
            steal,
            max_resident,
        };
        let resident = run_service_with(homes, workers, fleet_seed, config, make_spec);

        prop_assert_eq!(batch.homes.len(), resident.homes.len());
        for (b, r) in batch.homes.iter().zip(&resident.homes) {
            prop_assert_eq!(b.home, r.home);
            prop_assert_eq!(b.seed, r.seed);
            prop_assert_eq!(b.completed, r.completed);
            prop_assert_eq!(
                &b.counters, &r.counters,
                "home {} diverged under slicing (epoch {}ms, {} workers, \
                 steal {}, budget {:?})",
                b.home, epoch_ms, workers, steal, max_resident
            );
        }
        prop_assert_eq!(batch.digest(), resident.digest());

        // The histogram drains exactly the finished routines — through
        // evict/recover cycles too (recovery rebuilds the sink's
        // latency vector, so the drain cursor must stay consistent).
        let raw: u64 = batch
            .homes
            .iter()
            .map(|h| h.counters.latencies_ms.len() as u64)
            .sum();
        prop_assert_eq!(resident.latency.count(), raw);

        // Eviction may only ever shrink residency, never change work.
        if max_resident.is_none() {
            prop_assert_eq!(resident.evictions, 0);
            prop_assert_eq!(resident.peak_resident_homes, homes);
        }
    }

    #[test]
    fn skewed_fleet_is_steal_and_eviction_invariant(
        fleet_seed in any::<u64>(),
        heavy in 1usize..4,
        multiplier in 2u64..7,
        workers in 1usize..5,
        steal in any::<bool>(),
        budget_choice in 0usize..3,
    ) {
        // The bench's skewed shape at property-test scale: heavy homes
        // contiguous at the fleet front, stealing and eviction toggled
        // freely — per-home results must match the batch driver always.
        let homes = 6usize;
        let max_resident = [None, Some(0), Some(2)][budget_choice];
        let template = FleetTemplate::morning(EngineConfig::new(VisibilityModel::ev()));
        let skew = SkewParams::new(
            ServiceParams::new(TimeDelta::from_mins(20), 40)
                .with_bursts_from_seed(fleet_seed, 1),
            heavy,
            multiplier,
        );
        let make_spec = |home: usize, seed: u64| skewed_service_home(&template, &skew, home, seed);

        let batch = run_fleet(homes, 1, fleet_seed, make_spec);
        let config = ServiceConfig {
            epoch: TimeDelta::from_secs(10),
            steal,
            max_resident,
        };
        let resident = run_service_with(homes, workers, fleet_seed, config, make_spec);

        prop_assert_eq!(&batch.homes, &resident.homes);
        prop_assert_eq!(batch.digest(), resident.digest());
    }
}
