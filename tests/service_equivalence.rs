//! Property test: time-sliced resident execution is invisible.
//!
//! For random service fleets — home counts, fleet seeds, arrival rates,
//! horizons, burst windows, epoch lengths and worker counts — the
//! resident time-sliced runner (`run_service`) must reproduce the batch
//! run-to-completion fleet driver (`run_fleet`) byte for byte: same
//! per-home `RunCounters` (outcomes, latencies, digests), same fleet
//! digest. Slicing a home's timeline at arbitrary epoch boundaries and
//! interleaving it with its shard neighbours must never change which
//! events it sees or in what order.

use proptest::prelude::*;

use safehome::harness::{run_fleet, run_service};
use safehome::prelude::*;
use safehome::workloads::{service_home, FleetTemplate, ServiceParams};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn resident_sliced_run_matches_batch_fleet(
        homes in 2usize..8,
        fleet_seed in any::<u64>(),
        rate in 20u64..150,
        horizon_mins in 10u64..45,
        bursts in 0usize..3,
        epoch_choice in 0usize..4,
        workers in 1usize..5,
    ) {
        // From sub-event-grain slicing to epochs spanning many arrivals.
        let epoch_ms = [1u64, 777, 10_000, 300_000][epoch_choice];
        let template = FleetTemplate::morning(EngineConfig::new(VisibilityModel::ev()));
        let params = ServiceParams::new(TimeDelta::from_mins(horizon_mins), rate)
            .with_bursts_from_seed(fleet_seed, bursts);
        let make_spec = |_: usize, seed: u64| service_home(&template, &params, seed);

        let batch = run_fleet(homes, 1, fleet_seed, make_spec);
        let resident = run_service(
            homes,
            workers,
            fleet_seed,
            TimeDelta::from_millis(epoch_ms),
            make_spec,
        );

        prop_assert_eq!(batch.homes.len(), resident.homes.len());
        for (b, r) in batch.homes.iter().zip(&resident.homes) {
            prop_assert_eq!(b.home, r.home);
            prop_assert_eq!(b.seed, r.seed);
            prop_assert_eq!(b.completed, r.completed);
            prop_assert_eq!(
                &b.counters, &r.counters,
                "home {} diverged under slicing (epoch {}ms, {} workers)",
                b.home, epoch_ms, workers
            );
        }
        prop_assert_eq!(batch.digest(), resident.digest());

        // The histogram drains exactly the finished routines.
        let raw: u64 = batch
            .homes
            .iter()
            .map(|h| h.counters.latencies_ms.len() as u64)
            .sum();
        prop_assert_eq!(resident.latency.count(), raw);
    }
}
