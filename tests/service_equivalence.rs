//! Property test: time-sliced resident execution is invisible.
//!
//! For random service fleets — home counts, fleet seeds, arrival rates,
//! horizons, burst windows, epoch lengths, worker counts, stealing
//! on/off, resident-budget and eviction-policy choices, and intra-home
//! cluster splitting on/off — the resident time-sliced runner
//! (`run_service_with`) must reproduce the batch run-to-completion
//! fleet driver (`run_fleet`) byte for byte: same per-home
//! `RunCounters` (outcomes, latencies, digests), same fleet digest,
//! same slice count (where clustering is inactive — split homes slice
//! per cluster, so the count legitimately differs). Slicing a home's
//! timeline at arbitrary epoch boundaries, interleaving it with its
//! shard neighbours, running its slices on thieving workers, collapsing
//! it to its journal between slices, or decomposing it into per-cluster
//! sub-drivers and merging it back must never change which events it
//! sees or in what order.

use proptest::prelude::*;

use safehome::harness::{run_fleet, run_service_with, EvictionPolicy, ServiceConfig};
use safehome::lint::cluster;
use safehome::prelude::*;
use safehome::workloads::{
    service_home, skewed_service_home, zoned_fleet_home, zoned_home, FleetTemplate, ServiceParams,
    SkewParams, ZoneParams,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn resident_sliced_run_matches_batch_fleet(
        homes in 2usize..8,
        fleet_seed in any::<u64>(),
        rate in 20u64..150,
        horizon_mins in 10u64..45,
        bursts in 0usize..3,
        epoch_choice in 0usize..4,
        workers in 1usize..5,
        steal in any::<bool>(),
        budget_choice in 0usize..4,
        coldest_first in any::<bool>(),
        intra in any::<bool>(),
    ) {
        // From sub-event-grain slicing to epochs spanning many arrivals.
        let epoch_ms = [1u64, 777, 10_000, 300_000][epoch_choice];
        // No budget, evict-everything, and two partial budgets: random
        // evict points relative to each home's arrival clusters.
        let max_resident = [None, Some(0), Some(2), Some(5)][budget_choice];
        let template = FleetTemplate::morning(EngineConfig::new(VisibilityModel::ev()));
        let params = ServiceParams::new(TimeDelta::from_mins(horizon_mins), rate)
            .with_bursts_from_seed(fleet_seed, bursts);
        let make_spec = |_: usize, seed: u64| service_home(&template, &params, seed);

        let batch = run_fleet(homes, 1, fleet_seed, make_spec);
        let mut config = ServiceConfig::new(TimeDelta::from_millis(epoch_ms)).with_steal(steal);
        config.max_resident = max_resident;
        if coldest_first {
            config = config.with_eviction(EvictionPolicy::ColdestFirst);
        }
        if intra {
            // Jittered service homes fail the cluster gate, so the
            // planner declines every one — installing it must be a
            // no-op in results AND in slice structure.
            config = config.with_intra_home(cluster::planner());
        }
        let resident = run_service_with(homes, workers, fleet_seed, config, make_spec);

        prop_assert_eq!(batch.homes.len(), resident.homes.len());
        for (b, r) in batch.homes.iter().zip(&resident.homes) {
            prop_assert_eq!(b.home, r.home);
            prop_assert_eq!(b.seed, r.seed);
            prop_assert_eq!(b.completed, r.completed);
            prop_assert_eq!(
                &b.counters, &r.counters,
                "home {} diverged under slicing (epoch {}ms, {} workers, \
                 steal {}, budget {:?})",
                b.home, epoch_ms, workers, steal, max_resident
            );
        }
        prop_assert_eq!(batch.digest(), resident.digest());
        prop_assert_eq!(resident.intra_homes, 0, "jittered homes never split");
        prop_assert_eq!(resident.intra_fallbacks, 0);

        // The histogram drains exactly the finished routines — through
        // evict/recover cycles too (recovery rebuilds the sink's
        // latency vector, so the drain cursor must stay consistent).
        let raw: u64 = batch
            .homes
            .iter()
            .map(|h| h.counters.latencies_ms.len() as u64)
            .sum();
        prop_assert_eq!(resident.latency.count(), raw);

        // Eviction may only ever shrink residency, never change work.
        if max_resident.is_none() {
            prop_assert_eq!(resident.evictions, 0);
            prop_assert_eq!(resident.peak_resident_homes, homes);
        }
    }

    #[test]
    fn skewed_fleet_is_steal_and_eviction_invariant(
        fleet_seed in any::<u64>(),
        heavy in 1usize..4,
        multiplier in 2u64..7,
        workers in 1usize..5,
        steal in any::<bool>(),
        budget_choice in 0usize..3,
    ) {
        // The bench's skewed shape at property-test scale: heavy homes
        // contiguous at the fleet front, stealing and eviction toggled
        // freely — per-home results must match the batch driver always.
        let homes = 6usize;
        let max_resident = [None, Some(0), Some(2)][budget_choice];
        let template = FleetTemplate::morning(EngineConfig::new(VisibilityModel::ev()));
        let skew = SkewParams::new(
            ServiceParams::new(TimeDelta::from_mins(20), 40)
                .with_bursts_from_seed(fleet_seed, 1),
            heavy,
            multiplier,
        );
        let make_spec = |home: usize, seed: u64| skewed_service_home(&template, &skew, home, seed);

        let batch = run_fleet(homes, 1, fleet_seed, make_spec);
        let mut config = ServiceConfig::new(TimeDelta::from_secs(10)).with_steal(steal);
        config.max_resident = max_resident;
        let resident = run_service_with(homes, workers, fleet_seed, config, make_spec);

        prop_assert_eq!(&batch.homes, &resident.homes);
        prop_assert_eq!(batch.digest(), resident.digest());
    }

    #[test]
    fn intra_home_splitting_matches_batch_and_sequential_service(
        fleet_seed in any::<u64>(),
        zones in 2usize..6,
        routines_per_zone in 3usize..12,
        workers in 1usize..5,
        steal in any::<bool>(),
        epoch_choice in 0usize..3,
        chain_zones in any::<bool>(),
    ) {
        // A zoned-workshop heavy home (decomposable into `zones`
        // clusters, with intra-zone After chains) leading an ordinary
        // open-loop fleet. With the lint cluster planner installed the
        // workshop runs as parallel sub-slices; everything must stay
        // byte-identical to the batch driver and to the sequential
        // (planner-free) service run. `chain_zones` welds the zones
        // together with cross-zone After edges: one conflict cluster,
        // so the planner must decline and the run must fall back to the
        // sequential path without a merge fallback.
        let homes = 4usize;
        let epoch_ms = [500u64, 10_000, 120_000][epoch_choice];
        let template = FleetTemplate::morning(EngineConfig::new(VisibilityModel::ev()));
        let base = ServiceParams::new(TimeDelta::from_mins(15), 40);
        let zone = ZoneParams::new(zones, TimeDelta::from_mins(10), routines_per_zone);
        let make_spec = |home: usize, seed: u64| {
            let mut spec = zoned_fleet_home(&template, &base, &zone, home, seed);
            if home == 0 && chain_zones {
                // Weld every At-arrival submission to the first one:
                // the `After` union closure collapses everything into a
                // single cluster (intra-zone `After` edges keep their
                // predecessors, which are welded transitively).
                for i in 1..spec.submissions.len() {
                    if matches!(spec.submissions[i].arrival, safehome::harness::Arrival::At(_)) {
                        spec.submissions[i].arrival = safehome::harness::Arrival::After {
                            index: 0,
                            delay: TimeDelta::from_millis(10 * i as u64),
                        };
                    }
                }
            }
            spec
        };

        let batch = run_fleet(homes, 1, fleet_seed, make_spec);
        let sequential = run_service_with(
            homes,
            workers,
            fleet_seed,
            ServiceConfig::new(TimeDelta::from_millis(epoch_ms)).with_steal(steal),
            make_spec,
        );
        let split = run_service_with(
            homes,
            workers,
            fleet_seed,
            ServiceConfig::new(TimeDelta::from_millis(epoch_ms))
                .with_steal(steal)
                .with_intra_home(cluster::planner()),
            make_spec,
        );

        prop_assert_eq!(&batch.homes, &sequential.homes);
        prop_assert_eq!(&batch.homes, &split.homes);
        prop_assert_eq!(batch.digest(), split.digest());
        prop_assert_eq!(split.latency.count(), sequential.latency.count());
        prop_assert_eq!(split.intra_fallbacks, 0, "the gate admits no stalls");
        if chain_zones {
            prop_assert_eq!(split.intra_homes, 0, "welded zones must not split");
            prop_assert_eq!(
                split.slices, sequential.slices,
                "with clustering inactive the slice count is part of the contract"
            );
        } else {
            prop_assert_eq!(split.intra_homes, 1, "the workshop must split");
        }
    }
}

/// Pin (non-property): the workshop home's clustered execution is
/// byte-identical to its sequential run, straight through the harness
/// merge API with the real lint partition — the unit-level version of
/// the service property above.
#[test]
fn workshop_cluster_merge_is_byte_identical() {
    use safehome::harness::{run_clustered, Driver};
    use safehome::types::sink::RunCounters;

    let zone = ZoneParams::new(4, TimeDelta::from_mins(10), 8);
    for seed in [1u64, 0xFEED, 0x5afe_0a11] {
        let spec = zoned_home(EngineConfig::new(VisibilityModel::ev()), &zone, seed);
        let partition = cluster::plan(&spec).expect("workshop passes the gate");
        let merged = run_clustered(&spec, &partition).expect("merge succeeds");
        let mut d = Driver::with_sink(&spec, RunCounters::new());
        assert!(d.run_to_quiescence());
        let (sequential, _, _) = d.into_output();
        assert_eq!(merged, sequential, "seed {seed:#x}");
    }
}
