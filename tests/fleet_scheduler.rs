//! Fleet-scheduler determinism properties.
//!
//! The work-stealing schedule must be a pure scheduling decision: for
//! random fleet sizes and seeds, `Stealing` at 1/2/4 workers produces
//! per-home results and fleet digests byte-identical to `Static` — on
//! the homogeneous morning fleet and on the heterogeneous correlated
//! neighborhood-outage fleet alike.

use proptest::prelude::*;
use safehome_core::{EngineConfig, VisibilityModel};
use safehome_harness::{run_fleet_with, FleetSchedule, HomeRun};
use safehome_workloads::{neighborhood_home, FleetTemplate, NeighborhoodParams, NeighborhoodPlan};

fn assert_all_equal(
    reference: &[HomeRun],
    fleet_seed: u64,
    homes: usize,
    run: impl Fn(usize, FleetSchedule) -> Vec<HomeRun>,
) -> Result<(), String> {
    // Static at one worker is the reference; Stealing must match it at
    // every worker count, and Static again at the highest.
    let combos = [
        (FleetSchedule::Stealing, 1usize),
        (FleetSchedule::Stealing, 2),
        (FleetSchedule::Stealing, 4),
        (FleetSchedule::Static, 4),
    ];
    for (schedule, workers) in combos {
        let other = run(workers, schedule);
        prop_assert_eq!(
            reference.len(),
            other.len(),
            "home count ({homes} homes, seed {fleet_seed}, {schedule:?} @ {workers})"
        );
        for (a, b) in reference.iter().zip(&other) {
            prop_assert!(
                a == b,
                "home {} diverged ({homes} homes, seed {fleet_seed}, \
                 {schedule:?} @ {workers} workers)",
                a.home
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn stealing_matches_static_on_the_morning_fleet(
        homes in 1usize..20,
        fleet_seed in any::<u64>(),
    ) {
        let template = FleetTemplate::morning(EngineConfig::new(VisibilityModel::ev()));
        let spec = |_: usize, seed: u64| template.home_spec(seed);
        let reference =
            run_fleet_with(homes, 1, fleet_seed, FleetSchedule::Static, spec);
        prop_assert!(reference.all_completed());
        assert_all_equal(&reference.homes, fleet_seed, homes, |workers, schedule| {
            run_fleet_with(homes, workers, fleet_seed, schedule, spec).homes
        })?;
    }
}

proptest! {
    // Fewer cases: affected homes (storm centers especially) are orders
    // of magnitude more expensive to simulate — that heterogeneity is
    // the point of the scenario, but it adds up in debug-mode CI.
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn stealing_matches_static_on_the_neighborhood_fleet(
        homes in 4usize..12,
        fleet_seed in any::<u64>(),
    ) {
        let template = FleetTemplate::morning(EngineConfig::new(VisibilityModel::ev()));
        // Small clusters + guaranteed outages so even tiny fleets carry
        // correlated failures (the expensive, failure-heavy path).
        let params = NeighborhoodParams {
            cluster_size: 4,
            outage_p: 0.6,
            ..NeighborhoodParams::default()
        };
        let plan = NeighborhoodPlan::generate(fleet_seed, homes, &params);
        let spec = |home: usize, seed: u64| neighborhood_home(&template, &plan, home, seed);
        let reference =
            run_fleet_with(homes, 1, fleet_seed, FleetSchedule::Static, spec);
        prop_assert!(reference.all_completed());
        assert_all_equal(&reference.homes, fleet_seed, homes, |workers, schedule| {
            run_fleet_with(homes, workers, fleet_seed, schedule, spec).homes
        })?;
    }
}
