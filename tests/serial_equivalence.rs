//! Property tests: the headline correctness guarantee.
//!
//! For arbitrary workloads, every serialized model (EV under each
//! scheduler, PSV, GSV) must leave the home in a state equal to replaying
//! its witness serialization order — and, where the exhaustive check is
//! tractable, equal to *some* serial order (the paper's Fig. 12b check).

use proptest::prelude::*;

use safehome::harness::{run, RunSpec, Submission};
use safehome::metrics::congruence::{executed_writes, final_congruent, replay_witness};
use safehome::prelude::*;

/// A compact generated workload: routines as lists of (device, on/off,
/// duration-ms) triples, with arrival offsets.
/// One generated routine: arrival offset plus (device, on/off,
/// duration-ms) commands.
type GenRoutine = (u64, Vec<(u32, bool, u64)>);

#[derive(Debug, Clone)]
struct Workload {
    devices: usize,
    routines: Vec<GenRoutine>,
}

fn workload_strategy() -> impl Strategy<Value = Workload> {
    let cmd = (0u32..6, any::<bool>(), 50u64..3_000);
    let routine = (0u64..5_000, prop::collection::vec(cmd, 1..5));
    (prop::collection::vec(routine, 1..8)).prop_map(|routines| Workload {
        devices: 6,
        routines,
    })
}

fn build_spec(w: &Workload, model: VisibilityModel, seed: u64) -> RunSpec {
    let home = safehome::devices::catalog::plug_home(w.devices);
    let mut spec = RunSpec::new(home, EngineConfig::new(model)).with_seed(seed);
    for (at, cmds) in &w.routines {
        let mut b = Routine::builder("gen");
        for &(d, on, ms) in cmds {
            b = b.set(DeviceId(d), Value::Bool(on), TimeDelta::from_millis(ms));
        }
        spec.submit(Submission::at(b.build(), Timestamp::from_millis(*at)));
    }
    spec
}

fn serialized_models() -> Vec<VisibilityModel> {
    vec![
        VisibilityModel::Ev {
            scheduler: SchedulerKind::Timeline,
        },
        VisibilityModel::Ev {
            scheduler: SchedulerKind::Jit,
        },
        VisibilityModel::Ev {
            scheduler: SchedulerKind::Fcfs,
        },
        VisibilityModel::Psv,
        VisibilityModel::Gsv { strong: false },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn witness_replay_matches_end_state(w in workload_strategy(), seed in 0u64..1000) {
        for model in serialized_models() {
            let out = run(&build_spec(&w, model, seed));
            prop_assert!(out.completed, "{model:?} must quiesce");
            let writes = executed_writes(&out.trace);
            prop_assert!(
                replay_witness(
                    &out.trace.initial_states,
                    &out.trace.final_order,
                    &writes,
                    &out.trace.end_states,
                    &std::collections::HashSet::new(),
                ),
                "{model:?}: end state must equal the witness-order replay"
            );
        }
    }

    #[test]
    fn some_serial_order_always_exists(w in workload_strategy(), seed in 0u64..1000) {
        for model in serialized_models() {
            let out = run(&build_spec(&w, model, seed));
            prop_assert!(out.completed);
            prop_assert_eq!(
                final_congruent(&out.trace, 16),
                Some(true),
                "{:?}: exhaustive serial check must pass", model
            );
        }
    }

    #[test]
    fn traces_are_deterministic(w in workload_strategy(), seed in 0u64..1000) {
        let a = run(&build_spec(&w, VisibilityModel::ev(), seed));
        let b = run(&build_spec(&w, VisibilityModel::ev(), seed));
        prop_assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn all_routines_commit_without_failures(w in workload_strategy(), seed in 0u64..1000) {
        for model in serialized_models() {
            let out = run(&build_spec(&w, model, seed));
            prop_assert!(out.completed);
            prop_assert_eq!(
                out.trace.committed().len(),
                w.routines.len(),
                "{:?}: no failures injected, nothing may abort", model
            );
        }
    }
}
