//! Property tests: atomicity under random failure injection.
//!
//! With arbitrary fail-stop/recovery plans, serialized models must keep
//! two invariants: (1) every aborted routine's effects are undone — a
//! device an aborted routine wrote either carries another (committed or
//! later) value or its pre-routine value; (2) the witness-order replay
//! still matches the end state on devices that stayed reachable.

use proptest::prelude::*;
use std::collections::HashSet;

use safehome::harness::{run, RunSpec, Submission};
use safehome::metrics::congruence::{executed_writes, replay_witness};
use safehome::prelude::*;
use safehome::types::trace::TraceEventKind;

/// Routines as (arrival ms, [(device, on)]) lists.
type GenRoutines = Vec<(u64, Vec<(u32, bool)>)>;
/// Failures as (device, at ms, optional recovery delay ms).
type GenFailures = Vec<(u32, u64, Option<u64>)>;

fn spec_strategy() -> impl Strategy<Value = (GenRoutines, GenFailures, u64)> {
    let cmd = (0u32..5, any::<bool>());
    let routine = (0u64..8_000, prop::collection::vec(cmd, 1..4));
    let failure = (0u32..5, 0u64..20_000, prop::option::of(500u64..10_000));
    (
        prop::collection::vec(routine, 1..6),
        prop::collection::vec(failure, 0..3),
        any::<u64>(),
    )
}

fn build(
    routines: &[(u64, Vec<(u32, bool)>)],
    failures: &[(u32, u64, Option<u64>)],
    model: VisibilityModel,
    seed: u64,
) -> RunSpec {
    let home = safehome::devices::catalog::plug_home(5);
    let mut spec = RunSpec::new(home, EngineConfig::new(model)).with_seed(seed);
    for (at, cmds) in routines {
        let mut b = Routine::builder("gen");
        for &(d, on) in cmds {
            b = b.set(DeviceId(d), Value::Bool(on), TimeDelta::from_millis(400));
        }
        spec.submit(Submission::at(b.build(), Timestamp::from_millis(*at)));
    }
    let mut seen = HashSet::new();
    for &(d, at, recover) in failures {
        if !seen.insert(d) {
            continue; // One failure schedule per device keeps plans sane.
        }
        let dev = DeviceId(d);
        spec.failures = spec.failures.fail(dev, Timestamp::from_millis(at));
        if let Some(after) = recover {
            spec.failures = spec
                .failures
                .restart(dev, Timestamp::from_millis(at + after));
        }
    }
    spec
}

/// Devices that were ever detected down (their physical state may be
/// stale: writes and rollbacks were lost on them).
fn ever_down(trace: &safehome::types::trace::Trace) -> HashSet<DeviceId> {
    trace
        .events
        .iter()
        .filter_map(|e| match e.kind {
            TraceEventKind::DeviceDownDetected { device } => Some(device),
            _ => None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn witness_replay_holds_on_reachable_devices(
        (routines, failures, seed) in spec_strategy()
    ) {
        for model in [
            VisibilityModel::ev(),
            VisibilityModel::Psv,
            VisibilityModel::Gsv { strong: false },
            VisibilityModel::Gsv { strong: true },
        ] {
            let out = run(&build(&routines, &failures, model, seed));
            prop_assert!(out.completed, "{model:?} must quiesce under failures");
            let exclude = ever_down(&out.trace);
            let writes = executed_writes(&out.trace);
            prop_assert!(
                replay_witness(
                    &out.trace.initial_states,
                    &out.trace.final_order,
                    &writes,
                    &out.trace.end_states,
                    &exclude,
                ),
                "{model:?}: reachable devices must match the witness replay"
            );
        }
    }

    #[test]
    fn committed_plus_aborted_equals_submitted(
        (routines, failures, seed) in spec_strategy()
    ) {
        for model in [VisibilityModel::ev(), VisibilityModel::Psv] {
            let out = run(&build(&routines, &failures, model, seed));
            prop_assert!(out.completed);
            prop_assert_eq!(
                out.trace.committed().len() + out.trace.aborted().len(),
                routines.len(),
                "{:?}: every routine must resolve", model
            );
        }
    }

    #[test]
    fn no_failures_means_no_aborts_even_with_recoveries(
        (routines, _, seed) in spec_strategy()
    ) {
        let out = run(&build(&routines, &[], VisibilityModel::ev(), seed));
        prop_assert!(out.completed);
        prop_assert!(out.trace.aborted().is_empty());
    }
}
