//! Dynamic soundness cross-check for the static analyzer.
//!
//! `safehome-lint` predicts conflicts without executing anything; these
//! tests run the *actual* simulation and assert the prediction's
//! soundness claims:
//!
//! 1. **No false negatives** — every runtime-observed conflict (two
//!    submissions whose activity overlapped on a shared device) was
//!    statically predicted, over random workloads (routines, arrivals,
//!    failure plans, seeds) and over the bundled fleet scenarios.
//! 2. **Window containment** — every routine starts no earlier than its
//!    static window's `earliest_start` and touches no device after its
//!    `latest_end`.
//! 3. **Digest neutrality** — running a fleet through the lint gate
//!    (`run_fleet_gated` + `lint::check`) reproduces the ungated fleet
//!    byte for byte: linting never perturbs execution.
//! 4. **Pruning honesty** — workload clusters the analyzer prunes
//!    (separated by more than the serial bound) are also conflict-free
//!    at runtime.

use proptest::prelude::*;
use safehome::core::{EngineConfig, VisibilityModel};
use safehome::devices::catalog::plug_home;
use safehome::harness::{
    home_seed, run, run_fleet, run_fleet_gated, FleetSchedule, RunSpec, Submission,
};
use safehome::lint;
use safehome::sim::SimRng;
use safehome::types::{DeviceId, Routine, TimeDelta, Timestamp, UndoPolicy, Value};
use safehome::workloads::FleetTemplate;

fn config() -> EngineConfig {
    EngineConfig::new(VisibilityModel::ev())
}

/// Builds a random workload: `devices` plugs, `subs` routines of 1–4
/// commands mixing plain/best-effort/irreversible/handler-undo writes
/// and plain/guarded reads, arrivals either `At` (first 5 s) or `After`
/// an earlier submission, and an optional fail / fail-recover plan.
fn random_spec(devices: usize, subs: usize, seed: u64, plan_kind: u64) -> RunSpec {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut spec = RunSpec::new(plug_home(devices), config()).with_seed(seed);
    for i in 0..subs {
        let mut b = Routine::builder(format!("r{i}"));
        for _ in 0..1 + rng.index(4) {
            let dev = DeviceId(rng.index(devices) as u32);
            let dur = TimeDelta::from_millis(rng.int_in(1, 400));
            b = match rng.index(6) {
                0 => b.set(dev, Value::ON, dur),
                1 => b.set(dev, Value::OFF, dur),
                2 => b.set_best_effort(dev, Value::OFF, dur),
                3 => b.set_irreversible(dev, Value::ON, dur),
                4 => b.command(
                    safehome::types::Command::set(dev, Value::Int(7), dur)
                        .with_undo(UndoPolicy::Handler(Value::Int(1))),
                ),
                _ => b.read(
                    dev,
                    if rng.chance(0.5) {
                        Some(Value::ON)
                    } else {
                        None
                    },
                    dur,
                ),
            };
        }
        let routine = b.build();
        if i > 0 && rng.chance(0.4) {
            let pred = rng.index(i);
            spec.submit(Submission::after(
                routine,
                pred,
                TimeDelta::from_millis(rng.int_in(0, 2_000)),
            ));
        } else {
            spec.submit(Submission::at(
                routine,
                Timestamp::from_millis(rng.int_in(0, 5_000)),
            ));
        }
    }
    let victim = DeviceId(rng.index(devices) as u32);
    let at = Timestamp::from_millis(rng.int_in(0, 4_000));
    spec.failures = match plan_kind % 3 {
        0 => spec.failures.clone(),
        1 => spec.failures.clone().fail(victim, at),
        _ => spec.failures.clone().fail_recover(
            victim,
            at,
            TimeDelta::from_millis(rng.int_in(500, 3_000)),
        ),
    };
    spec
}

/// Runs `spec` and asserts all three per-run soundness claims against
/// its lint report. Returns an error message on the first violation.
fn check_soundness(spec: &RunSpec) -> Result<(), String> {
    let report = lint::analyze_spec(spec);
    let out = run(spec);
    if !out.completed {
        return Err("run did not reach quiescence".into());
    }
    // 1. Observed conflicts are all predicted.
    for c in lint::observed_conflicts(spec, &out.trace) {
        if !report.predicts_conflict(c.a, c.b, c.device) {
            return Err(format!(
                "observed conflict not predicted: submissions {} and {} on {:?}",
                c.a, c.b, c.device
            ));
        }
    }
    // 2. Starts and activity stay inside the static windows.
    let indices = lint::submission_indices(spec, &out.trace);
    for (id, record) in &out.trace.records {
        let Some(&i) = indices.get(id) else {
            return Err(format!("routine {id:?} not mapped to a submission"));
        };
        if let Some(started) = record.started {
            if started < report.windows[i].earliest_start {
                return Err(format!(
                    "submission {i} started {:?}, before its window {:?}",
                    started, report.windows[i].earliest_start
                ));
            }
        }
    }
    for ((i, device), (_, last)) in lint::activity_intervals(spec, &out.trace) {
        if last > report.windows[i].latest_end {
            return Err(format!(
                "submission {i} touched {device:?} at {last:?}, after its window end {:?}",
                report.windows[i].latest_end
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_workloads_observe_only_predicted_conflicts(
        devices in 1usize..6,
        subs in 1usize..7,
        seed in any::<u64>(),
        plan_kind in 0u64..3,
    ) {
        let spec = random_spec(devices, subs, seed, plan_kind);
        if let Err(msg) = check_soundness(&spec) {
            prop_assert!(
                false,
                "devices={devices} subs={subs} seed={seed} plan={plan_kind}: {msg}"
            );
        }
    }
}

#[test]
fn fleet_morning_homes_observe_only_predicted_conflicts() {
    use safehome::workloads::fleet_morning;
    for home in 0..20u64 {
        let seed = home_seed(0x5afe_f1ee, home);
        let spec = fleet_morning(config(), seed);
        if let Err(msg) = check_soundness(&spec) {
            panic!("fleet home {home} (seed {seed:#x}): {msg}");
        }
    }
}

#[test]
fn lint_gate_is_digest_neutral_at_fleet_scale() {
    let template = FleetTemplate::morning(config());
    let homes = 48;
    let base = run_fleet(homes, 2, 0x5afe_f1ee, |_, seed| template.home_spec(seed));
    let gated = run_fleet_gated(
        homes,
        2,
        0x5afe_f1ee,
        FleetSchedule::Stealing,
        |_, spec| lint::check(spec),
        |_, seed| template.home_spec(seed),
    )
    .expect("bundled fleet homes carry no lint errors");
    assert_eq!(base.digest(), gated.digest(), "linting perturbed execution");
    assert_eq!(base.homes, gated.homes);
}

#[test]
fn pruned_clusters_never_conflict_at_runtime() {
    // Two same-device clusters a day apart: statically pruned (the
    // serial bound is seconds), and the runtime must agree.
    let mut spec = RunSpec::new(plug_home(1), config());
    let r = |name: &str| {
        Routine::builder(name)
            .set(DeviceId(0), Value::ON, TimeDelta::from_millis(100))
            .build()
    };
    spec.submit(Submission::at(r("a1"), Timestamp::ZERO));
    spec.submit(Submission::at(r("a2"), Timestamp::ZERO));
    let day = Timestamp::from_secs(86_400);
    spec.submit(Submission::at(r("b1"), day));
    spec.submit(Submission::at(r("b2"), day));
    let report = lint::analyze_spec(&spec);
    let cross: Vec<_> = report
        .conflicts
        .iter()
        .filter(|c| c.a < 2 && c.b >= 2)
        .collect();
    assert!(cross.is_empty(), "cross-cluster pairs must be pruned");
    let out = run(&spec);
    assert!(out.completed);
    for c in lint::observed_conflicts(&spec, &out.trace) {
        assert!(
            (c.a < 2) == (c.b < 2),
            "runtime saw a cross-cluster conflict the lint pruned: {c:?}"
        );
        assert!(report.predicts_conflict(c.a, c.b, c.device));
    }
}
