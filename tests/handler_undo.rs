//! End-to-end tests for `UndoPolicy::Handler(..)`: user-specified undo
//! values must drive rollback through the full engine/harness stack —
//! not just `plan_rollback`'s unit tests — under every visibility model
//! with its own rollback path, and survive journal replay after a
//! controller crash.

use safehome::core::{EngineConfig, VisibilityModel};
use safehome::devices::catalog::plug_home;
use safehome::harness::{run, RunSpec, Submission};
use safehome::types::{Command, DeviceId, Routine, TimeDelta, Timestamp, UndoPolicy, Value};
use safehome::workloads::{run_uncrashed, run_with_crash};

fn d(i: u32) -> DeviceId {
    DeviceId(i)
}

/// A routine whose first write carries a handler undo (restore to
/// `Int(5)`, not the lineage value) and whose second command fails:
/// a guarded read expecting `ON` from a plug that is `OFF`.
fn handler_then_failed_guard() -> Routine {
    Routine::builder("handler_guard")
        .command(
            Command::set(d(0), Value::ON, TimeDelta::from_millis(100))
                .with_undo(UndoPolicy::Handler(Value::Int(5))),
        )
        .read(d(1), Some(Value::ON), TimeDelta::from_millis(50))
        .build()
}

fn models() -> Vec<(&'static str, VisibilityModel)> {
    vec![
        ("EV", VisibilityModel::ev()),
        ("GSV", VisibilityModel::Gsv { strong: false }),
        ("PSV", VisibilityModel::Psv),
    ]
}

#[test]
fn guard_failure_rolls_back_to_the_handler_value_under_every_model() {
    for (label, model) in models() {
        let mut spec = RunSpec::new(plug_home(2), EngineConfig::new(model));
        spec.submit(Submission::at(handler_then_failed_guard(), Timestamp::ZERO));
        let out = run(&spec);
        assert!(out.completed, "{label}: run must quiesce");
        assert_eq!(out.trace.aborted().len(), 1, "{label}: guard must abort");
        // The *physical* world (trace end states) must show the handler
        // value: the rollback dispatch carries `Int(5)`, not the
        // lineage's previous state. The engine's committed view rightly
        // still reads OFF — an aborted routine commits nothing.
        assert_eq!(
            out.trace.end_states[&d(0)],
            Value::Int(5),
            "{label}: rollback must restore the handler value, not the previous state"
        );
        assert_eq!(out.committed_states[&d(0)], Value::OFF, "{label}");
        assert_eq!(out.trace.end_states[&d(1)], Value::OFF, "{label}");
        let rollback_write = out.trace.events.iter().any(|ev| {
            matches!(
                ev.kind,
                safehome::types::trace::TraceEventKind::StateChanged {
                    device,
                    value: Value::Int(5),
                    rollback: true,
                    ..
                } if device == d(0)
            )
        });
        assert!(
            rollback_write,
            "{label}: the undo dispatch is a rollback write"
        );
    }
}

#[test]
fn must_command_failure_rolls_back_to_the_handler_value() {
    for (label, model) in models() {
        let mut spec = RunSpec::new(plug_home(2), EngineConfig::new(model));
        let routine = Routine::builder("handler_must")
            .command(
                Command::set(d(0), Value::ON, TimeDelta::from_millis(100))
                    .with_undo(UndoPolicy::Handler(Value::Int(9))),
            )
            .set(d(1), Value::ON, TimeDelta::from_millis(100))
            .build();
        spec.submit(Submission::at(routine, Timestamp::ZERO));
        spec.failures = spec.failures.clone().fail(d(1), Timestamp::ZERO);
        let out = run(&spec);
        assert!(out.completed, "{label}");
        assert_eq!(out.trace.aborted().len(), 1, "{label}: dead device aborts");
        assert_eq!(out.trace.end_states[&d(0)], Value::Int(9), "{label}");
    }
}

#[test]
fn handler_rollback_survives_crash_and_journal_replay() {
    // The handler-undone write must reach the same end state whether the
    // controller lives through the run or dies mid-way and recovers by
    // journal replay — at any crash point.
    let mut spec = RunSpec::new(plug_home(2), EngineConfig::new(VisibilityModel::ev()));
    spec.submit(Submission::at(handler_then_failed_guard(), Timestamp::ZERO));
    // The full-trace run pins the physical end state; the counters
    // digest (folded over every StateChanged, the Int(5) rollback write
    // included) then carries that behavior through the crash variants.
    let traced = run(&spec);
    assert_eq!(traced.trace.end_states[&d(0)], Value::Int(5));
    let (base_counters, base_states, base_completed) = run_uncrashed(&spec);
    assert!(base_completed);
    for crash_at in [1, 2, 3, 5, 8, usize::MAX] {
        let crashed = run_with_crash(&spec, crash_at);
        assert!(crashed.completed, "crash@{crash_at}");
        assert_eq!(
            crashed.counters, base_counters,
            "crash@{crash_at}: digest and counters must match the uncrashed run"
        );
        assert_eq!(
            crashed.committed_states, base_states,
            "crash@{crash_at}: handler value must survive replay"
        );
    }
}
