//! Property test: crash anywhere, recover, finish — same run.
//!
//! For random workloads, failure plans and crash indices, a journaled
//! run killed once its journal reaches the crash index, recovered by
//! replay and resumed onto the surviving world must reproduce the
//! uncrashed run exactly: the full `RunCounters` (routine outcomes,
//! latencies, end time, event-stream digest) and the committed device
//! states.
//!
//! The proptest shim has no shrinking, so a failure hand-rolls its own
//! minimization over the one scalar that matters: it walks the crash
//! index down to the smallest one that still fails and reports both.

use proptest::prelude::*;
use std::collections::HashSet;

use safehome::harness::{RunSpec, Submission};
use safehome::prelude::*;
use safehome::workloads::{run_uncrashed, run_with_crash};

/// Routines as (arrival ms, [(device, on)]) lists.
type GenRoutines = Vec<(u64, Vec<(u32, bool)>)>;
/// Failures as (device, at ms, optional recovery delay ms).
type GenFailures = Vec<(u32, u64, Option<u64>)>;

fn spec_strategy() -> impl Strategy<Value = (GenRoutines, GenFailures, u64)> {
    let cmd = (0u32..5, any::<bool>());
    let routine = (0u64..8_000, prop::collection::vec(cmd, 1..4));
    let failure = (0u32..5, 0u64..20_000, prop::option::of(500u64..10_000));
    (
        prop::collection::vec(routine, 1..6),
        prop::collection::vec(failure, 0..3),
        any::<u64>(),
    )
}

fn build(
    routines: &[(u64, Vec<(u32, bool)>)],
    failures: &[(u32, u64, Option<u64>)],
    seed: u64,
) -> RunSpec {
    let home = safehome::devices::catalog::plug_home(5);
    let mut spec = RunSpec::new(home, EngineConfig::new(VisibilityModel::ev())).with_seed(seed);
    for (at, cmds) in routines {
        let mut b = Routine::builder("gen");
        for &(d, on) in cmds {
            b = b.set(DeviceId(d), Value::Bool(on), TimeDelta::from_millis(400));
        }
        spec.submit(Submission::at(b.build(), Timestamp::from_millis(*at)));
    }
    let mut seen = HashSet::new();
    for &(d, at, recover) in failures {
        if !seen.insert(d) {
            continue; // One failure schedule per device keeps plans sane.
        }
        let dev = DeviceId(d);
        spec.failures = spec.failures.fail(dev, Timestamp::from_millis(at));
        if let Some(after) = recover {
            spec.failures = spec
                .failures
                .restart(dev, Timestamp::from_millis(at + after));
        }
    }
    spec
}

/// One crash/recover/resume run compared against the uncrashed
/// baseline; `Err` describes the first divergence.
fn check(spec: &RunSpec, crash_at: usize) -> Result<(), String> {
    let (base, base_states, base_completed) = run_uncrashed(spec);
    let out = run_with_crash(spec, crash_at);
    if out.completed != base_completed {
        return Err(format!(
            "completion diverged: crashed {} vs baseline {}",
            out.completed, base_completed
        ));
    }
    if out.counters != base {
        return Err(format!(
            "counters diverged: crashed digest {:#x} ({} committed, {} aborted) vs \
             baseline digest {:#x} ({} committed, {} aborted)",
            out.counters.digest,
            out.counters.committed,
            out.counters.aborted,
            base.digest,
            base.committed,
            base.aborted
        ));
    }
    if out.committed_states != base_states {
        return Err("committed device states diverged".into());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn crash_recover_finish_matches_uncrashed(
        (routines, failures, seed) in spec_strategy(),
        crash in 1usize..400,
    ) {
        let spec = build(&routines, &failures, seed);
        if let Err(e) = check(&spec, crash) {
            // Hand-rolled shrinking: find the minimal failing crash
            // index for this spec before reporting.
            let minimal = (1..crash)
                .find(|&k| check(&spec, k).is_err())
                .unwrap_or(crash);
            panic!(
                "crash index {crash} diverged (minimal failing index {minimal}): {e}"
            );
        }
    }
}
