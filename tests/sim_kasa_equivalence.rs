//! Cross-backend equivalence: the §7.2 morning scenario through the
//! discrete-event `SimBackend` and through `KasaBackend` + loopback
//! emulators must produce the same routine outcomes and the same final
//! committed states.
//!
//! Both runs share one `HomeRuntime` (the unified mediation layer), one
//! engine configuration and one workload; only the backend differs. The
//! workload is the real 29-routine / 31-device morning trace with every
//! time (arrivals, `After` delays, command durations) compressed by
//! `SCALE`, so the wall-clock run finishes in seconds while inter-event
//! gaps stay orders of magnitude above loopback scheduling jitter — the
//! serialization decisions then match the virtual-time run exactly.
//!
//! Routine identity is compared by *name* (unique in the morning
//! scenario), not by `RoutineId`: ids are assigned at submission, and
//! two independent chains submitting close together may swap ids across
//! backends without changing any outcome.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

use safehome_core::{EngineConfig, VisibilityModel};
use safehome_devices::LatencyModel;
use safehome_harness::{run, Arrival, RunSpec};
use safehome_kasa::{EmulatedPlug, KasaDriver, RealTimeRunner};
use safehome_types::{
    trace::{RoutineOutcome, Trace},
    DeviceId, TimeDelta, Timestamp, Value,
};
use safehome_workloads::morning;

/// Compression factor for the real-time run: 25 virtual minutes → ~15 s
/// of wall clock, with the smallest scheduling gaps still ≥ 100 ms.
const SCALE: u64 = 100;

/// The workload seed. Any seed works for the simulation; the chosen one
/// keeps the scaled gaps between *conflicting* routines (garage,
/// thermostat, tv, radio) comfortably above loopback jitter.
const SEED: u64 = 11;

fn scaled_morning_spec() -> RunSpec {
    let mut spec = morning(EngineConfig::new(VisibilityModel::ev()), SEED);
    // Loopback, zero-latency plan: the emulators answer in microseconds,
    // so the simulation must not add modeled Wi-Fi latency either.
    spec.latency = LatencyModel::Fixed(TimeDelta::ZERO);
    for s in &mut spec.submissions {
        match &mut s.arrival {
            Arrival::At(at) => *at = Timestamp::from_millis(at.as_millis() / SCALE),
            Arrival::After { delay, .. } => {
                *delay = TimeDelta::from_millis(delay.as_millis() / SCALE)
            }
        }
        for c in &mut s.routine.commands {
            c.duration = TimeDelta::from_millis(c.duration.as_millis() / SCALE);
        }
    }
    spec
}

/// (committed names, aborted names) from a finished trace.
fn outcomes_by_name(trace: &Trace) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut committed = BTreeSet::new();
    let mut aborted = BTreeSet::new();
    for rec in trace.records.values() {
        match rec.outcome {
            Some(RoutineOutcome::Committed) => {
                committed.insert(rec.routine.name.clone());
            }
            Some(RoutineOutcome::Aborted(_)) => {
                aborted.insert(rec.routine.name.clone());
            }
            None => panic!("routine {} never finished", rec.routine.name),
        }
    }
    (committed, aborted)
}

#[test]
fn morning_scenario_matches_between_sim_and_kasa_emulator() {
    let spec = scaled_morning_spec();

    // --- Simulated run (virtual time). ---
    let sim = run(&spec);
    assert!(sim.completed, "sim run must quiesce");
    let (sim_committed, sim_aborted) = outcomes_by_name(&sim.trace);
    assert_eq!(
        sim_committed.len() + sim_aborted.len(),
        29,
        "the morning scenario has 29 routines"
    );
    assert!(sim_aborted.is_empty(), "no failures injected, no aborts");

    // --- Real-time run (wall clock, loopback emulators). ---
    let plugs: Vec<EmulatedPlug> = spec
        .home
        .devices()
        .iter()
        .map(|d| EmulatedPlug::spawn(spec.home.name(d.id).to_string(), d.initial).unwrap())
        .collect();
    let drivers: Vec<KasaDriver> = plugs
        .iter()
        .map(|p| KasaDriver::new(p.handle().addr(), Duration::from_millis(500)))
        .collect();
    let mut runner = RealTimeRunner::with_sink_and_workload(
        spec.config.clone(),
        drivers,
        Duration::from_millis(250),
        &spec.submissions,
        |initial| {
            assert_eq!(
                *initial,
                spec.home.initial_states(),
                "emulators must boot in the spec's initial states"
            );
            Trace::new(initial.clone())
        },
    )
    .unwrap();
    let report = runner.run_to_quiescence(Duration::from_secs(120));
    assert!(report.completed, "real-time run must quiesce in time");
    let (kasa_trace, kasa_committed_states, completed) = runner.into_output();
    assert!(completed);
    let (kasa_committed, kasa_aborted) = outcomes_by_name(&kasa_trace);

    // --- Equivalence. ---
    assert_eq!(
        sim_committed, kasa_committed,
        "both backends must commit the same routines"
    );
    assert_eq!(
        sim_aborted, kasa_aborted,
        "both backends must abort the same routines"
    );
    assert_eq!(
        sim.committed_states, kasa_committed_states,
        "the engines' final committed states must agree"
    );
    // And the physical devices ended where the engine believes they are.
    let end_states: BTreeMap<DeviceId, Value> = spec
        .home
        .devices()
        .iter()
        .enumerate()
        .map(|(i, _)| (DeviceId(i as u32), plugs[i].handle().state()))
        .collect();
    assert_eq!(
        end_states, kasa_committed_states,
        "loopback devices must be congruent with the committed view"
    );
}
