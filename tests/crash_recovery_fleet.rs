//! Fleet-scale crash/restore determinism.
//!
//! Every home of a 200-home §7.2 morning fleet is run twice: once
//! journal-free (the baseline) and once with the execution journal
//! enabled, a controller crash at the home's seeded journal index,
//! journal-replay recovery and a resume onto the surviving world. The
//! two runs must agree on the *entire* `RunCounters` — committed and
//! aborted counts, per-routine latencies, end time and the
//! event-stream digest — and on the engine's committed device states.
//! Recovery is pure replay of a deterministic engine, so a crash at any
//! index is invisible to the continuation.

use std::collections::BTreeSet;

use safehome::core::{EngineConfig, VisibilityModel};
use safehome::harness::home_seed;
use safehome::workloads::{crash_index, crash_recovery, run_uncrashed, FleetTemplate};

const FLEET_SEED: u64 = 0xC4A5;
const HOMES: u64 = 200;

#[test]
fn two_hundred_home_fleet_survives_seeded_crashes() {
    let template = FleetTemplate::morning(EngineConfig::new(VisibilityModel::ev()));
    let mut indices: BTreeSet<usize> = BTreeSet::new();
    let mut irreversible_notes = 0usize;
    for home in 0..HOMES {
        let seed = home_seed(FLEET_SEED, home);
        let spec = template.home_spec(seed);
        let (base, base_states, base_completed) = run_uncrashed(&spec);
        let outcome = crash_recovery(&spec, seed);
        assert_eq!(outcome.completed, base_completed, "home {home}");
        assert_eq!(
            outcome.counters, base,
            "home {home}: counters/digest diverged across crash/restore"
        );
        assert_eq!(
            outcome.committed_states, base_states,
            "home {home}: committed states diverged across crash/restore"
        );
        indices.insert(crash_index(seed));
        irreversible_notes += outcome.notes.len();
        for note in &outcome.notes {
            assert!(
                note.contains("physically irreversible"),
                "home {home}: unexpected note {note:?}"
            );
        }
    }
    assert!(
        indices.len() > 20,
        "the seeded crash indices must spread across the run ({} distinct)",
        indices.len()
    );
    // Notes only appear when a crash lands inside an irreversible
    // write's started window; the deterministic harness tests pin that
    // path, here we only check any that occurred carried the wording
    // (asserted above, count reported for context: {irreversible_notes}).
    let _ = irreversible_notes;
}
